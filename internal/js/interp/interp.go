// Package interp is a tree-walking interpreter for the JavaScript subset
// with first-class instrumentation hooks.
//
// The hooks deliver exactly the dynamic events JS-CERES consumes (loop
// entry/iteration/exit, variable and property reads and writes, object
// creation, call boundaries, branch outcomes) — the same event vocabulary
// the paper's proxy-injected instrumentation observes inside a browser.
//
// Time is virtual and deterministic: every evaluation step advances a
// nanosecond clock by a fixed amount, and host operations may add extra
// time. All profiles in this reproduction are expressed in virtual time,
// which makes the Table 2/3 pipelines reproducible to the step.
package interp

import (
	"fmt"

	"repro/internal/js/ast"
	"repro/internal/js/value"
)

// Hooks is the instrumentation surface. Implementations must be cheap:
// they run inline with evaluation. A nil Hooks disables instrumentation.
type Hooks interface {
	// LoopEnter fires when a syntactic loop begins a new dynamic instance.
	LoopEnter(id ast.LoopID)
	// LoopIter fires before each iteration body.
	LoopIter(id ast.LoopID)
	// LoopExit fires when the loop instance finishes (normally or via
	// break/return/throw).
	LoopExit(id ast.LoopID)
	// LoopHeader brackets evaluation of a loop's init/post clauses so
	// analyzers can exempt induction-variable updates.
	LoopHeader(id ast.LoopID, active bool)
	// BranchTaken reports the outcome of a branching construct.
	BranchTaken(branchID int, taken bool)
	// CallEnter/CallExit bracket function invocations.
	CallEnter(name string)
	CallExit(name string)
	// VarDeclare fires when a binding is created; VarRead/VarWrite on use.
	VarDeclare(name string, b *Binding)
	VarRead(name string, b *Binding)
	VarWrite(name string, b *Binding)
	// ObjectNew fires for every object/array/function allocation.
	ObjectNew(o *value.Object)
	// PropRead/PropWrite fire on property and element accesses. key is the
	// canonical property key (array indices in decimal). via is the binding
	// of the base reference when the access goes through a simple variable
	// (p.x, a[i], this.y) and nil otherwise; JS-CERES characterizes the
	// access against the stamp of that reference, which is what makes the
	// paper's §3.3 forEach variant drop its warnings.
	PropRead(o *value.Object, key string, via *Binding)
	PropWrite(o *value.Object, key string, via *Binding)
}

// Binding is one variable slot. Aux is reserved for the analyzer
// (creation-stamp records), mirroring how the paper stamps variables.
type Binding struct {
	Name string
	V    value.Value
	Aux  any
}

// Scope is a function-level lexical scope. Blocks do not introduce scopes:
// `var` is function-scoped (hoisted), which the paper's §3.3 N-body example
// depends on. `this` is modelled as an ordinary binding named "this",
// re-declared at every call, which gives it the correct per-call stamp
// in the dependence analysis.
type Scope struct {
	vars   map[string]*Binding
	parent *Scope
	// layout/slots hold compiled frames (slots.go): names resolve through
	// fixed indices into slots instead of the map. vars stays nil on such
	// scopes unless a dynamic declaration lands on them.
	layout *scopeLayout
	slots  []*Binding
}

// NewScope returns a child scope of parent.
func NewScope(parent *Scope) *Scope {
	return &Scope{vars: make(map[string]*Binding, 8), parent: parent}
}

// Lookup resolves name through the scope chain, returning nil when the
// name is unbound. Host-side analyzers (internal/autopar's closure
// capture) use it to read the environment of an interpreted function;
// it resolves through compiled slot frames and map scopes alike.
func (s *Scope) Lookup(name string) *Binding { return s.lookup(name) }

func (s *Scope) lookup(name string) *Binding {
	for sc := s; sc != nil; sc = sc.parent {
		if sc.layout != nil {
			if i, ok := sc.layout.index[name]; ok {
				if b := sc.slots[i]; b != nil {
					return b
				}
			}
		}
		if b, ok := sc.vars[name]; ok {
			return b
		}
	}
	return nil
}

// ownBinding returns the binding declared directly on this scope (slot
// or map), nil otherwise.
func (s *Scope) ownBinding(name string) *Binding {
	if s.layout != nil {
		if i, ok := s.layout.index[name]; ok {
			if b := s.slots[i]; b != nil {
				return b
			}
		}
	}
	return s.vars[name]
}

func (s *Scope) declare(name string, v value.Value) *Binding {
	if b := s.ownBinding(name); b != nil {
		// re-declaration keeps the binding (var x; var x;)
		if !v.IsUndefined() {
			b.V = v
		}
		return b
	}
	b := &Binding{Name: name, V: v}
	if s.layout != nil {
		if i, ok := s.layout.index[name]; ok {
			s.slots[i] = b
			return b
		}
	}
	if s.vars == nil {
		s.vars = make(map[string]*Binding, 8)
	}
	s.vars[name] = b
	return b
}

// ctrl is a statement completion.
type ctrlKind uint8

const (
	ctrlNormal ctrlKind = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type ctrl struct {
	kind ctrlKind
	val  value.Value
}

var ctrlOK = ctrl{}

// jsThrow carries a JavaScript exception up the Go stack.
type jsThrow struct{ val value.Value }

// fatal carries an unrecoverable interpreter error (step limit etc.).
type fatal struct{ err error }

// Interp executes programs.
type Interp struct {
	Globals *Scope
	hooks   Hooks

	steps     int64
	nsPerStep int64
	hostNS    int64 // extra virtual time charged by host operations
	idleNS    int64 // virtual time spent idle (event-loop waits)
	maxSteps  int64

	callDepth    int
	maxCallDepth int

	rng uint64

	console []string
	// consoleCap bounds retained console output.
	consoleCap int

	// pristine records the standard globals as installed (and, for
	// object globals, a shallow snapshot of their own properties), so
	// analyzers (internal/autopar) can detect user rebinding or
	// mutation of e.g. Math.
	pristine      map[string]value.Value
	pristineProps map[string]map[string]value.Value

	// hostOpListener observes substrate operations (DOM mutations, canvas
	// blits) so analyzers can attribute them to open loops.
	hostOpListener func(category, op string)

	// compile enables the pre-resolved evaluator (compile.go): Run lowers
	// programs through the process-wide unit cache and calls dispatch
	// through compiled function bodies.
	compile bool
	// cu is the compiled unit of the program most recently Run in
	// compiled mode; makeFunction consults it to attach compiled bodies.
	cu *cunit
	// gcaches holds per-unit global reference caches — per interpreter,
	// because a *Binding resolved in one interpreter's Globals means
	// nothing in another's.
	gcaches map[*cunit][]*Binding
}

// SetHostOpListener registers the observer for host (DOM/canvas/event)
// operations. Substrate packages call EmitHostOp on every such operation.
func (in *Interp) SetHostOpListener(f func(category, op string)) { in.hostOpListener = f }

// EmitHostOp reports a host operation (category "dom", "canvas", ...) and
// charges extra virtual time for it.
func (in *Interp) EmitHostOp(category, op string, costNS int64) {
	in.hostNS += costNS
	if in.hostOpListener != nil {
		in.hostOpListener(category, op)
	}
}

// Option configures an Interp.
type Option func(*Interp)

// WithMaxSteps bounds the number of evaluation steps (0 = default 500M).
func WithMaxSteps(n int64) Option {
	return func(in *Interp) {
		if n > 0 {
			in.maxSteps = n
		}
	}
}

// WithNSPerStep sets the virtual cost of one evaluation step.
func WithNSPerStep(ns int64) Option { return func(in *Interp) { in.nsPerStep = ns } }

// WithSeed seeds the deterministic Math.random generator.
func WithSeed(seed uint64) Option {
	return func(in *Interp) {
		if seed == 0 {
			seed = 0x9E3779B97F4A7C15
		}
		in.rng = seed
	}
}

// New returns a ready interpreter with the standard global environment.
func New(opts ...Option) *Interp {
	in := &Interp{
		nsPerStep:    100,
		maxSteps:     500_000_000,
		maxCallDepth: 2000,
		rng:          0x9E3779B97F4A7C15,
		consoleCap:   10_000,
	}
	in.Globals = NewScope(nil)
	in.Globals.declare("this", value.Undefined())
	for _, o := range opts {
		o(in)
	}
	in.installGlobals()
	return in
}

// SetHooks installs (or clears, with nil) the instrumentation hooks.
func (in *Interp) SetHooks(h Hooks) { in.hooks = h }

// SetCompile toggles compiled execution: Run lowers the program to the
// pre-resolved form (compile.go) and calls dispatch through compiled
// function bodies. Observable behavior — values, console output, error
// messages, hook sequences and step counts — is identical to the tree
// walk (conformance_test.go proves it differentially). Worker
// interpreters in internal/parallel enable it by default.
func (in *Interp) SetCompile(on bool) { in.compile = on }

// CompileEnabled reports whether compiled execution is on.
func (in *Interp) CompileEnabled() bool { return in.compile }

// Hooks returns the installed hooks.
func (in *Interp) HooksInstalled() Hooks { return in.hooks }

// Steps returns the number of evaluation steps taken so far.
func (in *Interp) Steps() int64 { return in.steps }

// Now returns the current virtual time in nanoseconds.
func (in *Interp) Now() int64 { return in.steps*in.nsPerStep + in.hostNS + in.idleNS }

// ScriptTime returns the virtual time spent executing script and host
// operations — Now() minus idle waiting. This is the ground-truth "CPU
// active" time against which the Gecko-style sampler is compared.
func (in *Interp) ScriptTime() int64 { return in.steps*in.nsPerStep + in.hostNS }

// AdvanceTime adds idle time (event-loop waiting) to the virtual clock.
func (in *Interp) AdvanceTime(ns int64) { in.idleNS += ns }

// Console returns captured console.log output lines.
func (in *Interp) Console() []string { return in.console }

// step advances the interpreter clock and enforces the step budget.
func (in *Interp) step() {
	in.steps++
	if in.steps > in.maxSteps {
		panic(&fatal{fmt.Errorf("interp: step limit exceeded (%d)", in.maxSteps)})
	}
}

// stepN charges the pre-counted cost of a folded constant region at
// once, preserving exact step parity with the tree walk (the virtual
// clock is observable through performance.now and Date).
func (in *Interp) stepN(n int64) {
	in.steps += n
	if in.steps > in.maxSteps {
		panic(&fatal{fmt.Errorf("interp: step limit exceeded (%d)", in.maxSteps)})
	}
}

// Random returns the next deterministic Math.random() sample.
func (in *Interp) Random() float64 {
	// xorshift64*
	x := in.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	in.rng = x
	return float64(x*0x2545F4914F6CDD1D>>11) / float64(1<<53)
}

// throwValue raises a JavaScript exception.
func (in *Interp) throwValue(v value.Value) {
	panic(&jsThrow{val: v})
}

// throwError raises a JS Error object with the given name and message.
func (in *Interp) throwError(name, format string, args ...any) {
	o := in.newObjectOfClass(value.ClassError)
	o.Set("name", value.String(name))
	o.Set("message", value.String(fmt.Sprintf(format, args...)))
	in.throwValue(value.ObjectVal(o))
}

// newObjectOfClass allocates an object and fires the ObjectNew hook.
func (in *Interp) newObjectOfClass(class string) *value.Object {
	o := &value.Object{Class: class}
	if in.hooks != nil {
		in.hooks.ObjectNew(o)
	}
	return o
}

// NewObject allocates a plain object through the instrumented path.
func (in *Interp) NewObject() *value.Object { return in.newObjectOfClass(value.ClassObject) }

// NewArray allocates an array through the instrumented path.
func (in *Interp) NewArray(elems ...value.Value) *value.Object {
	o := value.NewArray(elems...)
	if in.hooks != nil {
		in.hooks.ObjectNew(o)
	}
	return o
}

// Run executes a parsed program in the global scope. It returns the error
// corresponding to an uncaught exception or fatal condition, if any.
func (in *Interp) Run(prog *ast.Program) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = recoveredToError(r)
		}
	}()
	if in.compile {
		// Attach the unit before hoisting so hoisted function values get
		// their compiled bodies.
		u := unitFor(prog)
		in.cu = u
		in.hoistInto(prog.Body, in.Globals)
		fr := frame{in: in, fscope: in.Globals, scope: in.Globals, gcache: in.gcacheFor(u)}
		for _, cs := range u.top {
			if c := cs(&fr); c.kind == ctrlReturn {
				break
			}
		}
		return nil
	}
	in.hoistInto(prog.Body, in.Globals)
	for _, s := range prog.Body {
		c := in.execStmt(s, in.Globals)
		if c.kind == ctrlReturn {
			break
		}
	}
	return nil
}

func recoveredToError(r any) error {
	switch t := r.(type) {
	case *jsThrow:
		return &value.Thrown{Val: t.val}
	case *fatal:
		return t.err
	default:
		panic(r)
	}
}

// hoistInto performs var and function-declaration hoisting for a statement
// list into the given scope.
func (in *Interp) hoistInto(body []ast.Stmt, env *Scope) {
	var hoistVars func(s ast.Stmt)
	hoistVars = func(s ast.Stmt) {
		switch x := s.(type) {
		case *ast.VarDecl:
			for _, n := range x.Names {
				in.declareVar(env, n, value.Undefined())
			}
		case *ast.BlockStmt:
			for _, s2 := range x.Body {
				hoistVars(s2)
			}
		case *ast.IfStmt:
			hoistVars(x.Cons)
			if x.Alt != nil {
				hoistVars(x.Alt)
			}
		case *ast.ForStmt:
			if x.Init != nil {
				hoistVars(x.Init)
			}
			hoistVars(x.Body)
		case *ast.WhileStmt:
			hoistVars(x.Body)
		case *ast.DoWhileStmt:
			hoistVars(x.Body)
		case *ast.ForInStmt:
			if x.Declare {
				in.declareVar(env, x.Name, value.Undefined())
			}
			hoistVars(x.Body)
		case *ast.TryStmt:
			hoistVars(x.Body)
			if x.Catch != nil {
				hoistVars(x.Catch)
			}
			if x.Finally != nil {
				hoistVars(x.Finally)
			}
		case *ast.SwitchStmt:
			for _, c := range x.Cases {
				for _, s2 := range c.Body {
					hoistVars(s2)
				}
			}
		}
	}
	for _, s := range body {
		hoistVars(s)
	}
	// Function declarations hoist with their values.
	for _, s := range body {
		if fd, ok := s.(*ast.FuncDecl); ok {
			fn := in.makeFunction(fd.Fn, env)
			in.declareVar(env, fd.Name, value.ObjectVal(fn))
		}
	}
}

func (in *Interp) declareVar(env *Scope, name string, v value.Value) *Binding {
	existing := env.ownBinding(name)
	b := env.declare(name, v)
	if in.hooks != nil && existing != b {
		in.hooks.VarDeclare(name, b)
	}
	return b
}

func (in *Interp) makeFunction(decl *ast.FuncLit, env *Scope) *value.Object {
	fn := value.NewFunction(decl.Name, decl.Params, decl, env)
	if in.cu != nil {
		if cf, ok := in.cu.funcs[decl]; ok {
			fn.Fn.Compiled = cf
		}
	}
	if in.hooks != nil {
		in.hooks.ObjectNew(fn)
	}
	return fn
}

// CallFunction implements value.Caller: it invokes fn with panics from JS
// exceptions propagating as Go panics (to be caught by enclosing try/catch
// or the Run/SafeCall boundary).
func (in *Interp) CallFunction(fn value.Value, this value.Value, args []value.Value) (value.Value, error) {
	return in.invoke(fn, this, args), nil
}

// SafeCall invokes fn, converting uncaught JS exceptions and fatal
// conditions to errors. Use it from host code (event loop, tests).
func (in *Interp) SafeCall(fn value.Value, this value.Value, args []value.Value) (v value.Value, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = recoveredToError(r)
			v = value.Undefined()
		}
	}()
	return in.invoke(fn, this, args), nil
}

// invoke calls a function value (interpreted or native).
func (in *Interp) invoke(fnv value.Value, this value.Value, args []value.Value) value.Value {
	if !fnv.IsCallable() {
		in.throwError("TypeError", "%s is not a function", fnv.TypeOf())
	}
	fn := fnv.Object().Fn
	name := fn.Name
	if name == "" {
		name = "<anonymous>"
	}
	in.callDepth++
	if in.callDepth > in.maxCallDepth {
		in.callDepth--
		in.throwError("RangeError", "maximum call stack size exceeded")
	}

	if fn.Native != nil {
		// Builtins are intrinsics: like JIT-inlined Math calls in a real
		// engine, they are not observable function boundaries, so they do
		// not fire Call hooks (the Gecko-style sampler cannot see them).
		defer func() { in.callDepth-- }()
		in.step()
		res, err := fn.Native(in, this, args)
		if err != nil {
			if t, ok := err.(*value.Thrown); ok {
				in.throwValue(t.Val)
			}
			panic(&fatal{err})
		}
		return res
	}

	if in.hooks != nil {
		in.hooks.CallEnter(name)
	}
	defer func() {
		in.callDepth--
		if in.hooks != nil {
			in.hooks.CallExit(name)
		}
	}()

	if cf, ok := fn.Compiled.(*cfunc); ok && in.compile {
		return in.callCompiled(cf, fn, this, args)
	}

	decl := fn.Decl.(*ast.FuncLit)
	env := NewScope(fn.Env.(*Scope))
	in.declareVar(env, "this", this)

	for i, p := range decl.Params {
		var v value.Value
		if i < len(args) {
			v = args[i]
		} else {
			v = value.Undefined()
		}
		in.declareVar(env, p, v)
	}
	// arguments array
	argObj := in.NewArray(args...)
	in.declareVar(env, "arguments", value.ObjectVal(argObj))

	// Hoist vars and nested function declarations.
	for _, n := range decl.VarNames {
		if _, isParam := env.vars[n]; !isParam {
			in.declareVar(env, n, value.Undefined())
		}
	}
	for _, s := range decl.Body.Body {
		if fd, ok := s.(*ast.FuncDecl); ok {
			f := in.makeFunction(fd.Fn, env)
			in.declareVar(env, fd.Name, value.ObjectVal(f))
		}
	}

	c := in.execBlock(decl.Body, env)
	if c.kind == ctrlReturn {
		return c.val
	}
	return value.Undefined()
}

// GlobalIsPristine reports whether a standard global still holds the
// exact value installGlobals installed — same binding value (object
// identity; NaN compares equal to itself) and, for object globals, the
// same own properties as at install time. A property write on a builtin
// (Math.K = 3, console.log = f) makes it non-pristine: another
// interpreter's copy of the builtin would disagree. False for names
// that were never standard globals.
func (in *Interp) GlobalIsPristine(name string) bool {
	v0, ok := in.pristine[name]
	if !ok {
		return false
	}
	b := in.Globals.lookup(name)
	if b == nil {
		return false
	}
	if !value.SameValue(b.V, v0) {
		return false
	}
	if !v0.IsObject() {
		return true
	}
	// Same object: its own properties must match the install snapshot
	// (shallow — every builtin's members are natives or primitives).
	snap := in.pristineProps[name]
	o := v0.Object()
	if o.NumProps() != len(snap) || len(o.Elems) != 0 {
		return false
	}
	for k, pv := range snap {
		cur, ok := o.GetOwn(k)
		if !ok || !value.StrictEquals(cur, pv) {
			return false
		}
		// Members install bare (natives and primitives); an expando on
		// one (Math.floor.k = 1) mutates shared state another
		// interpreter's copy would not have.
		if cur.IsObject() && (cur.Object().NumProps() > 0 || len(cur.Object().Elems) > 0) {
			return false
		}
	}
	return true
}

// Global reads a global binding (undefined if missing).
func (in *Interp) Global(name string) value.Value {
	if b := in.Globals.lookup(name); b != nil {
		return b.V
	}
	return value.Undefined()
}

// SetGlobal creates or updates a global binding.
func (in *Interp) SetGlobal(name string, v value.Value) {
	if b := in.Globals.lookup(name); b != nil {
		b.V = v
		return
	}
	in.declareVar(in.Globals, name, v)
}
