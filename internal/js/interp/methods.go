package interp

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/js/value"
)

// hooksOf extracts the instrumentation hooks from a Caller when the caller
// is the interpreter (always, in practice).
func hooksOf(c value.Caller) Hooks {
	if in, ok := c.(*Interp); ok {
		return in.hooks
	}
	return nil
}

func propWrite(c value.Caller, o *value.Object, key string) {
	if h := hooksOf(c); h != nil {
		h.PropWrite(o, key, nil)
	}
}

func propRead(c value.Caller, o *value.Object, key string) {
	if h := hooksOf(c); h != nil {
		h.PropRead(o, key, nil)
	}
}

func thisArray(this value.Value) (*value.Object, *value.Thrown) {
	if !this.IsObject() || !this.Object().IsArray() {
		return nil, value.ThrowTypeError("receiver is not an array")
	}
	return this.Object(), nil
}

func argAt(args []value.Value, i int) value.Value {
	if i < len(args) {
		return args[i]
	}
	return value.Undefined()
}

// arrayMethods implements the Array.prototype subset.
var arrayMethods = map[string]value.NativeFn{
	"push": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		for _, v := range args {
			a.Elems = append(a.Elems, v)
			propWrite(c, a, strconv.Itoa(len(a.Elems)-1))
		}
		return value.Int(len(a.Elems)), nil
	},
	"pop": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		if len(a.Elems) == 0 {
			return value.Undefined(), nil
		}
		v := a.Elems[len(a.Elems)-1]
		a.Elems = a.Elems[:len(a.Elems)-1]
		propWrite(c, a, "length")
		return v, nil
	},
	"shift": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		if len(a.Elems) == 0 {
			return value.Undefined(), nil
		}
		v := a.Elems[0]
		a.Elems = append(a.Elems[:0], a.Elems[1:]...)
		propWrite(c, a, "length")
		return v, nil
	},
	"unshift": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		a.Elems = append(append([]value.Value{}, args...), a.Elems...)
		propWrite(c, a, "length")
		return value.Int(len(a.Elems)), nil
	},
	"slice": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		n := len(a.Elems)
		start := sliceIndex(argAt(args, 0), 0, n)
		end := n
		if len(args) > 1 && !args[1].IsUndefined() {
			end = sliceIndex(args[1], n, n)
		}
		if start > end {
			start = end
		}
		out := value.NewArray(append([]value.Value{}, a.Elems[start:end]...)...)
		if h := hooksOf(c); h != nil {
			h.ObjectNew(out)
		}
		return value.ObjectVal(out), nil
	},
	"splice": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		n := len(a.Elems)
		start := sliceIndex(argAt(args, 0), 0, n)
		del := n - start
		if len(args) > 1 {
			del = int(args[1].ToNumber())
		}
		if del < 0 {
			del = 0
		}
		if start+del > n {
			del = n - start
		}
		removed := append([]value.Value{}, a.Elems[start:start+del]...)
		var ins []value.Value
		if len(args) > 2 {
			ins = args[2:]
		}
		rest := append([]value.Value{}, a.Elems[start+del:]...)
		a.Elems = append(a.Elems[:start], append(append([]value.Value{}, ins...), rest...)...)
		propWrite(c, a, "length")
		out := value.NewArray(removed...)
		if h := hooksOf(c); h != nil {
			h.ObjectNew(out)
		}
		return value.ObjectVal(out), nil
	},
	"concat": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		elems := append([]value.Value{}, a.Elems...)
		for _, arg := range args {
			if arg.IsObject() && arg.Object().IsArray() {
				elems = append(elems, arg.Object().Elems...)
			} else {
				elems = append(elems, arg)
			}
		}
		out := value.NewArray(elems...)
		if h := hooksOf(c); h != nil {
			h.ObjectNew(out)
		}
		return value.ObjectVal(out), nil
	},
	"join": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		sep := ","
		if len(args) > 0 && !args[0].IsUndefined() {
			sep = args[0].ToString()
		}
		parts := make([]string, len(a.Elems))
		for i, e := range a.Elems {
			if !e.IsNullish() {
				parts[i] = e.ToString()
			}
		}
		return value.String(strings.Join(parts, sep)), nil
	},
	"indexOf": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		target := argAt(args, 0)
		for i, e := range a.Elems {
			if value.StrictEquals(e, target) {
				return value.Int(i), nil
			}
		}
		return value.Int(-1), nil
	},
	"lastIndexOf": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		target := argAt(args, 0)
		for i := len(a.Elems) - 1; i >= 0; i-- {
			if value.StrictEquals(a.Elems[i], target) {
				return value.Int(i), nil
			}
		}
		return value.Int(-1), nil
	},
	"reverse": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		for i, j := 0, len(a.Elems)-1; i < j; i, j = i+1, j-1 {
			a.Elems[i], a.Elems[j] = a.Elems[j], a.Elems[i]
			propWrite(c, a, strconv.Itoa(i))
			propWrite(c, a, strconv.Itoa(j))
		}
		return this, nil
	},
	"fill": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		v := argAt(args, 0)
		for i := range a.Elems {
			a.Elems[i] = v
			propWrite(c, a, strconv.Itoa(i))
		}
		return this, nil
	},
	"sort": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		cmp := argAt(args, 0)
		var sortErr error
		sort.SliceStable(a.Elems, func(i, j int) bool {
			if sortErr != nil {
				return false
			}
			x, y := a.Elems[i], a.Elems[j]
			if cmp.IsCallable() {
				r, err := c.CallFunction(cmp, value.Undefined(), []value.Value{x, y})
				if err != nil {
					sortErr = err
					return false
				}
				return r.ToNumber() < 0
			}
			return x.ToString() < y.ToString()
		})
		for i := range a.Elems {
			propWrite(c, a, strconv.Itoa(i))
		}
		return this, sortErr
	},
	"map": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		fn := argAt(args, 0)
		out := make([]value.Value, len(a.Elems))
		for i, e := range a.Elems {
			propRead(c, a, strconv.Itoa(i))
			r, err := c.CallFunction(fn, value.Undefined(), []value.Value{e, value.Int(i), this})
			if err != nil {
				return value.Undefined(), err
			}
			out[i] = r
		}
		res := value.NewArray(out...)
		if h := hooksOf(c); h != nil {
			h.ObjectNew(res)
		}
		return value.ObjectVal(res), nil
	},
	"forEach": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		fn := argAt(args, 0)
		for i, e := range a.Elems {
			propRead(c, a, strconv.Itoa(i))
			if _, err := c.CallFunction(fn, value.Undefined(), []value.Value{e, value.Int(i), this}); err != nil {
				return value.Undefined(), err
			}
		}
		return value.Undefined(), nil
	},
	"filter": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		fn := argAt(args, 0)
		var out []value.Value
		for i, e := range a.Elems {
			r, err := c.CallFunction(fn, value.Undefined(), []value.Value{e, value.Int(i), this})
			if err != nil {
				return value.Undefined(), err
			}
			if r.ToBool() {
				out = append(out, e)
			}
		}
		res := value.NewArray(out...)
		if h := hooksOf(c); h != nil {
			h.ObjectNew(res)
		}
		return value.ObjectVal(res), nil
	},
	"reduce": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		fn := argAt(args, 0)
		i := 0
		var acc value.Value
		if len(args) > 1 {
			acc = args[1]
		} else {
			if len(a.Elems) == 0 {
				return value.Undefined(), value.ThrowTypeError("reduce of empty array with no initial value")
			}
			acc = a.Elems[0]
			i = 1
		}
		for ; i < len(a.Elems); i++ {
			r, err := c.CallFunction(fn, value.Undefined(), []value.Value{acc, a.Elems[i], value.Int(i), this})
			if err != nil {
				return value.Undefined(), err
			}
			acc = r
		}
		return acc, nil
	},
	"every": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		fn := argAt(args, 0)
		for i, e := range a.Elems {
			r, err := c.CallFunction(fn, value.Undefined(), []value.Value{e, value.Int(i), this})
			if err != nil {
				return value.Undefined(), err
			}
			if !r.ToBool() {
				return value.Bool(false), nil
			}
		}
		return value.Bool(true), nil
	},
	"some": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a, thr := thisArray(this)
		if thr != nil {
			return value.Undefined(), thr
		}
		fn := argAt(args, 0)
		for i, e := range a.Elems {
			r, err := c.CallFunction(fn, value.Undefined(), []value.Value{e, value.Int(i), this})
			if err != nil {
				return value.Undefined(), err
			}
			if r.ToBool() {
				return value.Bool(true), nil
			}
		}
		return value.Bool(false), nil
	},
}

func sliceIndex(v value.Value, def, n int) int {
	if v.IsUndefined() {
		return def
	}
	i := int(v.ToNumber())
	if i < 0 {
		i += n
	}
	if i < 0 {
		i = 0
	}
	if i > n {
		i = n
	}
	return i
}

// stringMember resolves property/method access on string primitives.
func (in *Interp) stringMember(s, key string) value.Value {
	switch key {
	case "length":
		return value.Int(len(s))
	}
	if i, err := strconv.Atoi(key); err == nil {
		if i >= 0 && i < len(s) {
			return value.String(s[i : i+1])
		}
		return value.Undefined()
	}
	if m, ok := stringMethods[key]; ok {
		return value.ObjectVal(value.NewNative(key, m))
	}
	return value.Undefined()
}

func thisString(this value.Value) string { return this.ToString() }

var stringMethods = map[string]value.NativeFn{
	"charAt": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		s := thisString(this)
		i := int(argAt(args, 0).ToNumber())
		if i < 0 || i >= len(s) {
			return value.String(""), nil
		}
		return value.String(s[i : i+1]), nil
	},
	"charCodeAt": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		s := thisString(this)
		i := int(argAt(args, 0).ToNumber())
		if i < 0 || i >= len(s) {
			return value.Number(math.NaN()), nil
		}
		return value.Int(int(s[i])), nil
	},
	"indexOf": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		return value.Int(strings.Index(thisString(this), argAt(args, 0).ToString())), nil
	},
	"lastIndexOf": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		return value.Int(strings.LastIndex(thisString(this), argAt(args, 0).ToString())), nil
	},
	"substring": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		s := thisString(this)
		n := len(s)
		a := clampInt(int(argAt(args, 0).ToNumber()), 0, n)
		b := n
		if len(args) > 1 && !args[1].IsUndefined() {
			b = clampInt(int(args[1].ToNumber()), 0, n)
		}
		if a > b {
			a, b = b, a
		}
		return value.String(s[a:b]), nil
	},
	"substr": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		s := thisString(this)
		n := len(s)
		a := int(argAt(args, 0).ToNumber())
		if a < 0 {
			a += n
		}
		a = clampInt(a, 0, n)
		l := n - a
		if len(args) > 1 && !args[1].IsUndefined() {
			l = clampInt(int(args[1].ToNumber()), 0, n-a)
		}
		return value.String(s[a : a+l]), nil
	},
	"slice": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		s := thisString(this)
		n := len(s)
		a := sliceIndex(argAt(args, 0), 0, n)
		b := n
		if len(args) > 1 && !args[1].IsUndefined() {
			b = sliceIndex(args[1], n, n)
		}
		if a > b {
			a = b
		}
		return value.String(s[a:b]), nil
	},
	"split": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		s := thisString(this)
		sep := argAt(args, 0)
		var parts []string
		if sep.IsUndefined() {
			parts = []string{s}
		} else if sep.ToString() == "" {
			for i := 0; i < len(s); i++ {
				parts = append(parts, s[i:i+1])
			}
		} else {
			parts = strings.Split(s, sep.ToString())
		}
		elems := make([]value.Value, len(parts))
		for i, p := range parts {
			elems[i] = value.String(p)
		}
		out := value.NewArray(elems...)
		if h := hooksOf(c); h != nil {
			h.ObjectNew(out)
		}
		return value.ObjectVal(out), nil
	},
	"toUpperCase": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		return value.String(strings.ToUpper(thisString(this))), nil
	},
	"toLowerCase": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		return value.String(strings.ToLower(thisString(this))), nil
	},
	"trim": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		return value.String(strings.TrimSpace(thisString(this))), nil
	},
	"replace": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		// non-regex single replacement, like JS with a string pattern
		s := thisString(this)
		return value.String(strings.Replace(s, argAt(args, 0).ToString(), argAt(args, 1).ToString(), 1)), nil
	},
	"concat": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		s := thisString(this)
		for _, a := range args {
			s += a.ToString()
		}
		return value.String(s), nil
	},
	"toString": func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		return value.String(thisString(this)), nil
	},
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// numberMember resolves property/method access on number primitives.
func (in *Interp) numberMember(v value.Value, key string) value.Value {
	switch key {
	case "toFixed":
		return value.ObjectVal(value.NewNative("toFixed", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			digits := int(argAt(args, 0).ToNumber())
			return value.String(strconv.FormatFloat(this.ToNumber(), 'f', digits, 64)), nil
		}))
	case "toString":
		return value.ObjectVal(value.NewNative("toString", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			if len(args) > 0 && !args[0].IsUndefined() {
				base := int(args[0].ToNumber())
				if base >= 2 && base <= 36 {
					return value.String(strconv.FormatInt(int64(this.ToNumber()), base)), nil
				}
			}
			return value.String(this.ToString()), nil
		}))
	}
	return value.Undefined()
}
