package interp

import (
	"repro/internal/js/ast"
	"repro/internal/js/value"
)

// NopHooks implements Hooks with no-ops; embed it to implement only the
// events an analyzer cares about.
type NopHooks struct{}

// LoopEnter implements Hooks.
func (NopHooks) LoopEnter(ast.LoopID) {}

// LoopIter implements Hooks.
func (NopHooks) LoopIter(ast.LoopID) {}

// LoopExit implements Hooks.
func (NopHooks) LoopExit(ast.LoopID) {}

// LoopHeader implements Hooks.
func (NopHooks) LoopHeader(ast.LoopID, bool) {}

// BranchTaken implements Hooks.
func (NopHooks) BranchTaken(int, bool) {}

// CallEnter implements Hooks.
func (NopHooks) CallEnter(string) {}

// CallExit implements Hooks.
func (NopHooks) CallExit(string) {}

// VarDeclare implements Hooks.
func (NopHooks) VarDeclare(string, *Binding) {}

// VarRead implements Hooks.
func (NopHooks) VarRead(string, *Binding) {}

// VarWrite implements Hooks.
func (NopHooks) VarWrite(string, *Binding) {}

// ObjectNew implements Hooks.
func (NopHooks) ObjectNew(*value.Object) {}

// PropRead implements Hooks.
func (NopHooks) PropRead(*value.Object, string, *Binding) {}

// PropWrite implements Hooks.
func (NopHooks) PropWrite(*value.Object, string, *Binding) {}

// MultiHooks fans every event out to a list of hook implementations, so a
// profiler and a sampler can observe the same run.
type MultiHooks struct{ List []Hooks }

// NewMultiHooks combines hooks; nil entries are dropped.
func NewMultiHooks(hooks ...Hooks) *MultiHooks {
	m := &MultiHooks{}
	for _, h := range hooks {
		if h != nil {
			m.List = append(m.List, h)
		}
	}
	return m
}

// LoopEnter implements Hooks.
func (m *MultiHooks) LoopEnter(id ast.LoopID) {
	for _, h := range m.List {
		h.LoopEnter(id)
	}
}

// LoopIter implements Hooks.
func (m *MultiHooks) LoopIter(id ast.LoopID) {
	for _, h := range m.List {
		h.LoopIter(id)
	}
}

// LoopExit implements Hooks.
func (m *MultiHooks) LoopExit(id ast.LoopID) {
	for _, h := range m.List {
		h.LoopExit(id)
	}
}

// LoopHeader implements Hooks.
func (m *MultiHooks) LoopHeader(id ast.LoopID, active bool) {
	for _, h := range m.List {
		h.LoopHeader(id, active)
	}
}

// BranchTaken implements Hooks.
func (m *MultiHooks) BranchTaken(id int, taken bool) {
	for _, h := range m.List {
		h.BranchTaken(id, taken)
	}
}

// CallEnter implements Hooks.
func (m *MultiHooks) CallEnter(name string) {
	for _, h := range m.List {
		h.CallEnter(name)
	}
}

// CallExit implements Hooks.
func (m *MultiHooks) CallExit(name string) {
	for _, h := range m.List {
		h.CallExit(name)
	}
}

// VarDeclare implements Hooks.
func (m *MultiHooks) VarDeclare(name string, b *Binding) {
	for _, h := range m.List {
		h.VarDeclare(name, b)
	}
}

// VarRead implements Hooks.
func (m *MultiHooks) VarRead(name string, b *Binding) {
	for _, h := range m.List {
		h.VarRead(name, b)
	}
}

// VarWrite implements Hooks.
func (m *MultiHooks) VarWrite(name string, b *Binding) {
	for _, h := range m.List {
		h.VarWrite(name, b)
	}
}

// ObjectNew implements Hooks.
func (m *MultiHooks) ObjectNew(o *value.Object) {
	for _, h := range m.List {
		h.ObjectNew(o)
	}
}

// PropRead implements Hooks.
func (m *MultiHooks) PropRead(o *value.Object, key string, via *Binding) {
	for _, h := range m.List {
		h.PropRead(o, key, via)
	}
}

// PropWrite implements Hooks.
func (m *MultiHooks) PropWrite(o *value.Object, key string, via *Binding) {
	for _, h := range m.List {
		h.PropWrite(o, key, via)
	}
}

var _ Hooks = (*MultiHooks)(nil)
var _ Hooks = NopHooks{}
