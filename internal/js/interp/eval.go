package interp

import (
	"fmt"
	"math"

	"repro/internal/js/ast"
	"repro/internal/js/token"
	"repro/internal/js/value"
)

func errUnknownNode(n ast.Node) error {
	return fmt.Errorf("interp: unknown AST node %T at %s", n, n.Pos())
}

// assignVar writes name in the innermost scope where it is bound; unbound
// names are created as implicit globals (the JS pitfall §2.4 discusses).
func (in *Interp) assignVar(env *Scope, name string, v value.Value) {
	b := env.lookup(name)
	if b == nil {
		b = in.declareVar(in.Globals, name, v)
		if in.hooks != nil {
			in.hooks.VarWrite(name, b)
		}
		return
	}
	b.V = v
	if in.hooks != nil {
		in.hooks.VarWrite(name, b)
	}
}

// readVar reads name, throwing ReferenceError when unbound.
func (in *Interp) readVar(env *Scope, name string) value.Value {
	b := env.lookup(name)
	if b == nil {
		in.throwError("ReferenceError", "%s is not defined", name)
	}
	if in.hooks != nil {
		in.hooks.VarRead(name, b)
	}
	return b.V
}

// evalExpr evaluates an expression; JS exceptions propagate by panic.
func (in *Interp) evalExpr(e ast.Expr, env *Scope) value.Value {
	in.step()
	switch x := e.(type) {
	case *ast.NumberLit:
		return value.Number(x.Value)
	case *ast.StringLit:
		return value.String(x.Value)
	case *ast.BoolLit:
		return value.Bool(x.Value)
	case *ast.NullLit:
		return value.Null()
	case *ast.UndefinedLit:
		return value.Undefined()
	case *ast.ThisExpr:
		return in.readVar(env, "this")
	case *ast.Ident:
		return in.readVar(env, x.Name)
	case *ast.ArrayLit:
		elems := make([]value.Value, len(x.Elems))
		for i, el := range x.Elems {
			elems[i] = in.evalExpr(el, env)
		}
		return value.ObjectVal(in.NewArray(elems...))
	case *ast.ObjectLit:
		o := in.NewObject()
		for i, k := range x.Keys {
			v := in.evalExpr(x.Values[i], env)
			o.Set(k, v)
			if in.hooks != nil {
				in.hooks.PropWrite(o, k, nil)
			}
		}
		return value.ObjectVal(o)
	case *ast.FuncLit:
		fn := in.makeFunction(x, env)
		return value.ObjectVal(fn)
	case *ast.UnaryExpr:
		return in.evalUnary(x, env)
	case *ast.UpdateExpr:
		return in.evalUpdate(x, env)
	case *ast.BinaryExpr:
		return in.evalBinary(x, env)
	case *ast.CondExpr:
		c := in.evalExpr(x.Cond, env).ToBool()
		if in.hooks != nil {
			in.hooks.BranchTaken(x.BranchID, c)
		}
		if c {
			return in.evalExpr(x.Cons, env)
		}
		return in.evalExpr(x.Alt, env)
	case *ast.AssignExpr:
		return in.evalAssign(x, env)
	case *ast.CallExpr:
		return in.evalCall(x, env)
	case *ast.NewExpr:
		return in.evalNew(x, env)
	case *ast.MemberExpr:
		obj, via := in.evalBase(x.X, env)
		return in.getMember(obj, x.Name, via)
	case *ast.IndexExpr:
		obj, via := in.evalBase(x.X, env)
		key := in.evalExpr(x.Index, env)
		return in.getMember(obj, propertyKey(key), via)
	case *ast.SeqExpr:
		var last value.Value
		for _, sub := range x.Exprs {
			last = in.evalExpr(sub, env)
		}
		return last
	default:
		panic(&fatal{errUnknownNode(e)})
	}
}

// propertyKey converts an index value to its canonical property key.
func propertyKey(v value.Value) string {
	if v.IsNumber() {
		f := v.Num()
		if f == math.Trunc(f) && !math.IsInf(f, 0) && math.Abs(f) < 1e15 {
			return value.FormatNumber(f)
		}
	}
	return v.ToString()
}

// evalBase evaluates the base expression of a property access and, when it
// is a simple reference (identifier or this), returns its binding so the
// access can be characterized against the reference's stamp.
func (in *Interp) evalBase(e ast.Expr, env *Scope) (value.Value, *Binding) {
	switch t := e.(type) {
	case *ast.Ident:
		b := env.lookup(t.Name)
		if b == nil {
			in.throwError("ReferenceError", "%s is not defined", t.Name)
		}
		if in.hooks != nil {
			in.hooks.VarRead(t.Name, b)
		}
		in.step()
		return b.V, b
	case *ast.ThisExpr:
		b := env.lookup("this")
		in.step()
		if b == nil {
			return value.Undefined(), nil
		}
		return b.V, b
	}
	return in.evalExpr(e, env), nil
}

// getMember reads obj.key with primitive auto-methods and hooks.
func (in *Interp) getMember(obj value.Value, key string, via *Binding) value.Value {
	switch obj.Kind() {
	case value.KindString:
		return in.stringMember(obj.Str(), key)
	case value.KindNumber:
		return in.numberMember(obj, key)
	case value.KindObject:
		o := obj.Object()
		if in.hooks != nil {
			in.hooks.PropRead(o, key, via)
		}
		if v, ok := o.Get(key); ok {
			return v
		}
		// Builtin method tables for arrays and functions.
		if o.IsArray() {
			if m, ok := arrayMethods[key]; ok {
				return value.ObjectVal(value.NewNative(key, m))
			}
		}
		if o.Fn != nil {
			switch key {
			case "call":
				return value.ObjectVal(value.NewNative("call", nativeFuncCall))
			case "apply":
				return value.ObjectVal(value.NewNative("apply", nativeFuncApply))
			case "prototype":
				// auto-create the prototype object on first access
				p := in.NewObject()
				o.Set("prototype", value.ObjectVal(p))
				return value.ObjectVal(p)
			case "length":
				return value.Int(len(o.Fn.Params))
			case "name":
				return value.String(o.Fn.Name)
			}
		}
		return value.Undefined()
	case value.KindUndefined, value.KindNull:
		in.throwError("TypeError", "cannot read property %q of %s", key, obj.TypeOf())
	}
	return value.Undefined()
}

// setMember writes obj.key = v with hooks.
func (in *Interp) setMember(obj value.Value, key string, v value.Value, via *Binding) {
	if !obj.IsObject() {
		if obj.IsNullish() {
			in.throwError("TypeError", "cannot set property %q of %s", key, obj.TypeOf())
		}
		return // silently ignore writes to primitives (non-strict JS)
	}
	o := obj.Object()
	o.Set(key, v)
	if in.hooks != nil {
		in.hooks.PropWrite(o, key, via)
	}
}

func (in *Interp) evalUnary(x *ast.UnaryExpr, env *Scope) value.Value {
	switch x.Op {
	case token.TYPEOF:
		// typeof on an unbound identifier does not throw
		if id, ok := x.X.(*ast.Ident); ok {
			b := env.lookup(id.Name)
			if b == nil {
				return value.String("undefined")
			}
			if in.hooks != nil {
				in.hooks.VarRead(id.Name, b)
			}
			return value.String(b.V.TypeOf())
		}
		v := in.evalExpr(x.X, env)
		return value.String(v.TypeOf())
	case token.DELETE:
		switch t := x.X.(type) {
		case *ast.MemberExpr:
			obj, via := in.evalBase(t.X, env)
			if obj.IsObject() {
				ok := obj.Object().Delete(t.Name)
				if in.hooks != nil {
					in.hooks.PropWrite(obj.Object(), t.Name, via)
				}
				return value.Bool(ok)
			}
			return value.Bool(true)
		case *ast.IndexExpr:
			obj, via := in.evalBase(t.X, env)
			key := propertyKey(in.evalExpr(t.Index, env))
			if obj.IsObject() {
				ok := obj.Object().Delete(key)
				if in.hooks != nil {
					in.hooks.PropWrite(obj.Object(), key, via)
				}
				return value.Bool(ok)
			}
			return value.Bool(true)
		default:
			return value.Bool(true)
		}
	}
	v := in.evalExpr(x.X, env)
	switch x.Op {
	case token.MINUS:
		return value.Number(-v.ToNumber())
	case token.PLUS:
		return value.Number(v.ToNumber())
	case token.NOT:
		return value.Bool(!v.ToBool())
	case token.BITNOT:
		return value.Number(float64(^v.ToInt32()))
	}
	panic(&fatal{fmt.Errorf("interp: unknown unary op %s", x.Op)})
}

func (in *Interp) evalUpdate(x *ast.UpdateExpr, env *Scope) value.Value {
	delta := 1.0
	if x.Op == token.DEC {
		delta = -1
	}
	switch t := x.X.(type) {
	case *ast.Ident:
		old := in.readVar(env, t.Name).ToNumber()
		nv := value.Number(old + delta)
		in.assignVar(env, t.Name, nv)
		if x.Prefix {
			return nv
		}
		return value.Number(old)
	case *ast.MemberExpr:
		obj, via := in.evalBase(t.X, env)
		old := in.getMember(obj, t.Name, via).ToNumber()
		nv := value.Number(old + delta)
		in.setMember(obj, t.Name, nv, via)
		if x.Prefix {
			return nv
		}
		return value.Number(old)
	case *ast.IndexExpr:
		obj, via := in.evalBase(t.X, env)
		key := propertyKey(in.evalExpr(t.Index, env))
		old := in.getMember(obj, key, via).ToNumber()
		nv := value.Number(old + delta)
		in.setMember(obj, key, nv, via)
		if x.Prefix {
			return nv
		}
		return value.Number(old)
	}
	in.throwError("SyntaxError", "invalid update target")
	return value.Undefined()
}

func (in *Interp) evalBinary(x *ast.BinaryExpr, env *Scope) value.Value {
	// Short-circuit logical operators.
	switch x.Op {
	case token.LAND:
		l := in.evalExpr(x.L, env)
		taken := l.ToBool()
		if in.hooks != nil {
			in.hooks.BranchTaken(x.BranchID, taken)
		}
		if !taken {
			return l
		}
		return in.evalExpr(x.R, env)
	case token.LOR:
		l := in.evalExpr(x.L, env)
		taken := l.ToBool()
		if in.hooks != nil {
			in.hooks.BranchTaken(x.BranchID, !taken)
		}
		if taken {
			return l
		}
		return in.evalExpr(x.R, env)
	}

	l := in.evalExpr(x.L, env)
	r := in.evalExpr(x.R, env)
	return in.applyBinary(x.Op, l, r)
}

// applyBinary applies a (non-logical) binary operator.
func (in *Interp) applyBinary(op token.Type, l, r value.Value) value.Value {
	if v, ok := applyBinaryPure(op, l, r); ok {
		return v
	}
	switch op {
	case token.IN:
		if !r.IsObject() {
			in.throwError("TypeError", "'in' requires an object")
		}
		return value.Bool(r.Object().Has(l.ToString()))
	case token.INSTANCEOF:
		return value.Bool(in.instanceOf(l, r))
	}
	panic(&fatal{fmt.Errorf("interp: unknown binary op %s", op)})
}

// applyBinaryPure applies the side-effect-free binary operators — every
// operator except `in`/`instanceof`, which consult objects and can
// throw. The compiler's constant folder (compile.go) relies on this
// split: a pure operator on constants is safe to evaluate at compile
// time.
func applyBinaryPure(op token.Type, l, r value.Value) (value.Value, bool) {
	switch op {
	case token.PLUS:
		if l.IsString() || r.IsString() ||
			(l.IsObject() && !l.IsCallable()) || (r.IsObject() && !r.IsCallable()) {
			return value.String(l.ToString() + r.ToString()), true
		}
		return value.Number(l.ToNumber() + r.ToNumber()), true
	case token.MINUS:
		return value.Number(l.ToNumber() - r.ToNumber()), true
	case token.STAR:
		return value.Number(l.ToNumber() * r.ToNumber()), true
	case token.SLASH:
		return value.Number(l.ToNumber() / r.ToNumber()), true
	case token.PERCENT:
		return value.Number(math.Mod(l.ToNumber(), r.ToNumber())), true
	case token.LT, token.GT, token.LE, token.GE:
		return compareOp(op, l, r), true
	case token.EQ:
		return value.Bool(value.LooseEquals(l, r)), true
	case token.NEQ:
		return value.Bool(!value.LooseEquals(l, r)), true
	case token.STRICTEQ:
		return value.Bool(value.StrictEquals(l, r)), true
	case token.STRICTNE:
		return value.Bool(!value.StrictEquals(l, r)), true
	case token.AND:
		return value.Number(float64(l.ToInt32() & r.ToInt32())), true
	case token.OR:
		return value.Number(float64(l.ToInt32() | r.ToInt32())), true
	case token.XOR:
		return value.Number(float64(l.ToInt32() ^ r.ToInt32())), true
	case token.SHL:
		return value.Number(float64(l.ToInt32() << (r.ToUint32() & 31))), true
	case token.SHR:
		return value.Number(float64(l.ToInt32() >> (r.ToUint32() & 31))), true
	case token.USHR:
		return value.Number(float64(l.ToUint32() >> (r.ToUint32() & 31))), true
	}
	return value.Value{}, false
}

func compareOp(op token.Type, l, r value.Value) value.Value {
	if l.IsString() && r.IsString() {
		switch op {
		case token.LT:
			return value.Bool(l.Str() < r.Str())
		case token.GT:
			return value.Bool(l.Str() > r.Str())
		case token.LE:
			return value.Bool(l.Str() <= r.Str())
		case token.GE:
			return value.Bool(l.Str() >= r.Str())
		}
	}
	lf, rf := l.ToNumber(), r.ToNumber()
	if math.IsNaN(lf) || math.IsNaN(rf) {
		return value.Bool(false)
	}
	switch op {
	case token.LT:
		return value.Bool(lf < rf)
	case token.GT:
		return value.Bool(lf > rf)
	case token.LE:
		return value.Bool(lf <= rf)
	case token.GE:
		return value.Bool(lf >= rf)
	}
	return value.Bool(false)
}

func (in *Interp) instanceOf(l, r value.Value) bool {
	if !r.IsCallable() {
		in.throwError("TypeError", "right-hand side of instanceof is not callable")
	}
	if !l.IsObject() {
		return false
	}
	protoV, _ := r.Object().GetOwn("prototype")
	if !protoV.IsObject() {
		return false
	}
	proto := protoV.Object()
	for o := l.Object().Proto; o != nil; o = o.Proto {
		if o == proto {
			return true
		}
	}
	return false
}

func (in *Interp) evalAssign(x *ast.AssignExpr, env *Scope) value.Value {
	compute := func(old func() value.Value) value.Value {
		if x.Op == token.ASSIGN {
			return in.evalExpr(x.R, env)
		}
		l := old()
		r := in.evalExpr(x.R, env)
		return in.applyBinary(x.Op.CompoundOp(), l, r)
	}
	switch t := x.L.(type) {
	case *ast.Ident:
		v := compute(func() value.Value { return in.readVar(env, t.Name) })
		in.assignVar(env, t.Name, v)
		return v
	case *ast.MemberExpr:
		obj, via := in.evalBase(t.X, env)
		v := compute(func() value.Value { return in.getMember(obj, t.Name, via) })
		in.setMember(obj, t.Name, v, via)
		return v
	case *ast.IndexExpr:
		obj, via := in.evalBase(t.X, env)
		key := propertyKey(in.evalExpr(t.Index, env))
		v := compute(func() value.Value { return in.getMember(obj, key, via) })
		in.setMember(obj, key, v, via)
		return v
	}
	in.throwError("SyntaxError", "invalid assignment target")
	return value.Undefined()
}

func (in *Interp) evalCall(x *ast.CallExpr, env *Scope) value.Value {
	var this value.Value
	var fn value.Value
	switch t := x.Fn.(type) {
	case *ast.MemberExpr:
		var via *Binding
		this, via = in.evalBase(t.X, env)
		fn = in.getMember(this, t.Name, via)
		if !fn.IsCallable() {
			in.throwError("TypeError", "%s.%s is not a function", describeExpr(t.X), t.Name)
		}
	case *ast.IndexExpr:
		var via *Binding
		this, via = in.evalBase(t.X, env)
		key := propertyKey(in.evalExpr(t.Index, env))
		fn = in.getMember(this, key, via)
		if !fn.IsCallable() {
			in.throwError("TypeError", "%s[%q] is not a function", describeExpr(t.X), key)
		}
	default:
		this = value.Undefined()
		fn = in.evalExpr(x.Fn, env)
	}
	args := make([]value.Value, len(x.Args))
	for i, a := range x.Args {
		args[i] = in.evalExpr(a, env)
	}
	return in.invoke(fn, this, args)
}

func describeExpr(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.ThisExpr:
		return "this"
	case *ast.MemberExpr:
		return describeExpr(t.X) + "." + t.Name
	}
	return "expression"
}

func (in *Interp) evalNew(x *ast.NewExpr, env *Scope) value.Value {
	fn := in.evalExpr(x.Fn, env)
	if !fn.IsCallable() {
		in.throwError("TypeError", "%s is not a constructor", describeExpr(x.Fn))
	}
	args := make([]value.Value, len(x.Args))
	for i, a := range x.Args {
		args[i] = in.evalExpr(a, env)
	}
	return in.construct(fn, args)
}

// construct runs `new fn(args...)` once the callee has been checked
// callable and the arguments evaluated. Shared by the tree walk and the
// compiled path (compile.go).
func (in *Interp) construct(fn value.Value, args []value.Value) value.Value {
	fo := fn.Object()
	// Builtin constructors (Array, Object, Error...) construct directly.
	if fo.Fn.Native != nil {
		res, err := fo.Fn.Native(in, value.Undefined(), args)
		if err != nil {
			if t, ok := err.(*value.Thrown); ok {
				in.throwValue(t.Val)
			}
			panic(&fatal{err})
		}
		if res.IsObject() {
			return res
		}
		return value.ObjectVal(in.NewObject())
	}
	self := in.NewObject()
	if protoV, ok := fo.GetOwn("prototype"); ok && protoV.IsObject() {
		self.Proto = protoV.Object()
	} else {
		p := in.NewObject()
		fo.Set("prototype", value.ObjectVal(p))
		self.Proto = p
	}
	res := in.invoke(fn, value.ObjectVal(self), args)
	if res.IsObject() {
		return res
	}
	return value.ObjectVal(self)
}

// nativeFuncCall implements Function.prototype.call.
func nativeFuncCall(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
	// `this` here is the function being called... but our dispatch binds
	// `this` to the receiver of `.call`, which IS the function object.
	if !this.IsCallable() {
		return value.Undefined(), value.ThrowTypeError("Function.call on non-function")
	}
	var newThis value.Value
	var rest []value.Value
	if len(args) > 0 {
		newThis = args[0]
		rest = args[1:]
	} else {
		newThis = value.Undefined()
	}
	return c.CallFunction(this, newThis, rest)
}

// nativeFuncApply implements Function.prototype.apply.
func nativeFuncApply(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
	if !this.IsCallable() {
		return value.Undefined(), value.ThrowTypeError("Function.apply on non-function")
	}
	var newThis value.Value
	var rest []value.Value
	if len(args) > 0 {
		newThis = args[0]
	} else {
		newThis = value.Undefined()
	}
	if len(args) > 1 && args[1].IsObject() && args[1].Object().IsArray() {
		rest = args[1].Object().Elems
	}
	return c.CallFunction(this, newThis, rest)
}
