package interp

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/js/value"
)

// installGlobals wires the standard library into the global scope:
// Math, console, performance (virtual high-resolution timer, cf. the
// paper's use of the HR-time API in §3.1), constructors, and the usual
// top-level conversion functions.
func (in *Interp) installGlobals() {
	// Pristine snapshots must be taken eagerly, at install time: a lazy
	// snapshot on first use would bake any earlier user mutation into
	// the baseline and defeat GlobalIsPristine.
	in.pristine = make(map[string]value.Value, 24)
	in.pristineProps = make(map[string]map[string]value.Value, 8)
	g := func(name string, v value.Value) {
		in.Globals.declare(name, v)
		in.pristine[name] = v
		if v.IsObject() {
			o := v.Object()
			snap := make(map[string]value.Value, o.NumProps())
			for _, k := range o.OwnKeys() {
				pv, _ := o.GetOwn(k)
				snap[k] = pv
			}
			in.pristineProps[name] = snap
		}
	}
	native := func(name string, fn value.NativeFn) value.Value {
		return value.ObjectVal(value.NewNative(name, fn))
	}

	// ---- Math ----
	m := value.NewObject()
	m.Set("PI", value.Number(math.Pi))
	m.Set("E", value.Number(math.E))
	m.Set("LN2", value.Number(math.Ln2))
	m.Set("SQRT2", value.Number(math.Sqrt2))
	m1 := func(name string, f func(float64) float64) {
		m.Set(name, native("Math."+name, func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			return value.Number(f(argAt(args, 0).ToNumber())), nil
		}))
	}
	m1("abs", math.Abs)
	m1("floor", math.Floor)
	m1("ceil", math.Ceil)
	m1("sqrt", math.Sqrt)
	m1("sin", math.Sin)
	m1("cos", math.Cos)
	m1("tan", math.Tan)
	m1("asin", math.Asin)
	m1("acos", math.Acos)
	m1("atan", math.Atan)
	m1("exp", math.Exp)
	m1("log", math.Log)
	m1("round", func(f float64) float64 { return math.Floor(f + 0.5) })
	m.Set("pow", native("Math.pow", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		return value.Number(math.Pow(argAt(args, 0).ToNumber(), argAt(args, 1).ToNumber())), nil
	}))
	m.Set("atan2", native("Math.atan2", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		return value.Number(math.Atan2(argAt(args, 0).ToNumber(), argAt(args, 1).ToNumber())), nil
	}))
	m.Set("min", native("Math.min", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		out := math.Inf(1)
		for _, a := range args {
			f := a.ToNumber()
			if math.IsNaN(f) {
				return value.Number(math.NaN()), nil
			}
			if f < out {
				out = f
			}
		}
		return value.Number(out), nil
	}))
	m.Set("max", native("Math.max", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		out := math.Inf(-1)
		for _, a := range args {
			f := a.ToNumber()
			if math.IsNaN(f) {
				return value.Number(math.NaN()), nil
			}
			if f > out {
				out = f
			}
		}
		return value.Number(out), nil
	}))
	m.Set("random", native("Math.random", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		return value.Number(in.Random()), nil
	}))
	g("Math", value.ObjectVal(m))

	// ---- console ----
	console := value.NewObject()
	logFn := native("console.log", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = a.ToString()
		}
		if len(in.console) < in.consoleCap {
			in.console = append(in.console, strings.Join(parts, " "))
		}
		return value.Undefined(), nil
	})
	console.Set("log", logFn)
	console.Set("warn", logFn)
	console.Set("error", logFn)
	g("console", value.ObjectVal(console))

	// ---- performance.now (virtual clock, ms with ns precision) ----
	perf := value.NewObject()
	perf.Set("now", native("performance.now", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		return value.Number(float64(in.Now()) / 1e6), nil
	}))
	g("performance", value.ObjectVal(perf))

	// ---- Date.now ----
	date := value.NewNative("Date", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		o := in.NewObject()
		o.Set("getTime", native("getTime", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
			return value.Number(float64(in.Now()) / 1e6), nil
		}))
		return value.ObjectVal(o), nil
	})
	date.Set("now", native("Date.now", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		return value.Number(float64(in.Now()) / 1e6), nil
	}))
	g("Date", value.ObjectVal(date))

	// ---- conversions ----
	g("parseInt", native("parseInt", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		s := strings.TrimSpace(argAt(args, 0).ToString())
		base := 10
		if len(args) > 1 && !args[1].IsUndefined() {
			base = int(args[1].ToNumber())
		}
		if base == 16 || ((base == 0 || base == 10) && (strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"))) {
			s = strings.TrimPrefix(strings.TrimPrefix(s, "0x"), "0X")
			base = 16
		}
		if base == 0 {
			base = 10
		}
		neg := false
		if strings.HasPrefix(s, "-") {
			neg = true
			s = s[1:]
		} else if strings.HasPrefix(s, "+") {
			s = s[1:]
		}
		end := 0
		for end < len(s) && isBaseDigit(s[end], base) {
			end++
		}
		if end == 0 {
			return value.Number(math.NaN()), nil
		}
		n, err := strconv.ParseInt(s[:end], base, 64)
		if err != nil {
			return value.Number(math.NaN()), nil
		}
		f := float64(n)
		if neg {
			f = -f
		}
		return value.Number(f), nil
	}))
	g("parseFloat", native("parseFloat", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		s := strings.TrimSpace(argAt(args, 0).ToString())
		end := len(s)
		for end > 0 {
			if _, err := strconv.ParseFloat(s[:end], 64); err == nil {
				break
			}
			end--
		}
		if end == 0 {
			return value.Number(math.NaN()), nil
		}
		f, _ := strconv.ParseFloat(s[:end], 64)
		return value.Number(f), nil
	}))
	g("isNaN", native("isNaN", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		return value.Bool(math.IsNaN(argAt(args, 0).ToNumber())), nil
	}))
	g("isFinite", native("isFinite", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		f := argAt(args, 0).ToNumber()
		return value.Bool(!math.IsNaN(f) && !math.IsInf(f, 0)), nil
	}))
	g("NaN", value.Number(math.NaN()))
	g("Infinity", value.Number(math.Inf(1)))

	// ---- constructors ----
	arrayCtor := value.NewNative("Array", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		if len(args) == 1 && args[0].IsNumber() {
			return value.ObjectVal(in.NewArray(make([]value.Value, int(args[0].ToNumber()))...)), nil
		}
		return value.ObjectVal(in.NewArray(args...)), nil
	})
	arrayCtor.Set("isArray", native("Array.isArray", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a := argAt(args, 0)
		return value.Bool(a.IsObject() && a.Object().IsArray()), nil
	}))
	g("Array", value.ObjectVal(arrayCtor))

	objectCtor := value.NewNative("Object", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		return value.ObjectVal(in.NewObject()), nil
	})
	objectCtor.Set("keys", native("Object.keys", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		a := argAt(args, 0)
		if !a.IsObject() {
			return value.ObjectVal(in.NewArray()), nil
		}
		keys := a.Object().OwnKeys()
		elems := make([]value.Value, len(keys))
		for i, k := range keys {
			elems[i] = value.String(k)
		}
		return value.ObjectVal(in.NewArray(elems...)), nil
	}))
	objectCtor.Set("create", native("Object.create", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		o := in.NewObject()
		if p := argAt(args, 0); p.IsObject() {
			o.Proto = p.Object()
		}
		return value.ObjectVal(o), nil
	}))
	g("Object", value.ObjectVal(objectCtor))

	stringCtor := value.NewNative("String", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		return value.String(argAt(args, 0).ToString()), nil
	})
	stringCtor.Set("fromCharCode", native("String.fromCharCode", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		var sb strings.Builder
		for _, a := range args {
			sb.WriteByte(byte(int(a.ToNumber())))
		}
		return value.String(sb.String()), nil
	}))
	g("String", value.ObjectVal(stringCtor))

	g("Number", native("Number", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		return value.Number(argAt(args, 0).ToNumber()), nil
	}))
	g("Boolean", native("Boolean", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		return value.Bool(argAt(args, 0).ToBool()), nil
	}))
	g("Error", native("Error", func(c value.Caller, this value.Value, args []value.Value) (value.Value, error) {
		o := in.newObjectOfClass(value.ClassError)
		o.Set("name", value.String("Error"))
		o.Set("message", value.String(argAt(args, 0).ToString()))
		return value.ObjectVal(o), nil
	}))
}

func isBaseDigit(c byte, base int) bool {
	var d int
	switch {
	case c >= '0' && c <= '9':
		d = int(c - '0')
	case c >= 'a' && c <= 'z':
		d = int(c-'a') + 10
	case c >= 'A' && c <= 'Z':
		d = int(c-'A') + 10
	default:
		return false
	}
	return d < base
}
