package interp

// conformance_test.go is the differential suite that lets us trust the
// compiled evaluator (compile.go/slots.go/exec.go): every program runs
// through both the tree walk and the compiled path and must produce
// byte-identical console output, identical thrown-error messages,
// identical step counts (the virtual clock is observable) and an
// identical instrumentation event stream (autopar's guards ride on it).
// FuzzInterpDifferential (fuzz_test.go) extends the same oracle to
// arbitrary parseable inputs.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/value"
)

// traceHooks records every instrumentation event as a comparable string.
// Bindings and objects are identified by name/class, not pointer, so
// traces from two interpreters can be compared directly.
type traceHooks struct {
	ev []string
}

func (h *traceHooks) add(format string, args ...any) {
	h.ev = append(h.ev, fmt.Sprintf(format, args...))
}

func bindName(b *Binding) string {
	if b == nil {
		return "<nil>"
	}
	return b.Name
}

func (h *traceHooks) LoopEnter(id ast.LoopID)  { h.add("loop-enter %d", id) }
func (h *traceHooks) LoopIter(id ast.LoopID)   { h.add("loop-iter %d", id) }
func (h *traceHooks) LoopExit(id ast.LoopID)   { h.add("loop-exit %d", id) }
func (h *traceHooks) LoopHeader(id ast.LoopID, active bool) {
	h.add("loop-header %d %v", id, active)
}
func (h *traceHooks) BranchTaken(branchID int, taken bool) {
	h.add("branch %d %v", branchID, taken)
}
func (h *traceHooks) CallEnter(name string) { h.add("call-enter %s", name) }
func (h *traceHooks) CallExit(name string)  { h.add("call-exit %s", name) }
func (h *traceHooks) VarDeclare(name string, b *Binding) {
	h.add("var-decl %s %s", name, bindName(b))
}
func (h *traceHooks) VarRead(name string, b *Binding)  { h.add("var-read %s", name) }
func (h *traceHooks) VarWrite(name string, b *Binding) { h.add("var-write %s", name) }
func (h *traceHooks) ObjectNew(o *value.Object)        { h.add("obj-new %s", o.Class) }
func (h *traceHooks) PropRead(o *value.Object, key string, via *Binding) {
	h.add("prop-read %s %s via=%s", o.Class, key, bindName(via))
}
func (h *traceHooks) PropWrite(o *value.Object, key string, via *Binding) {
	h.add("prop-write %s %s via=%s", o.Class, key, bindName(via))
}

// diffResult is everything observable from one run.
type diffResult struct {
	parseErr    string
	runErr      string
	console     []string
	steps       int64
	trace       []string
	stepLimited bool
}

const diffMaxSteps = 200_000

// runEngine executes src on a fresh interpreter in the given mode.
func runEngine(src string, compiled bool) diffResult {
	return runEngineBudget(src, compiled, diffMaxSteps)
}

func runEngineBudget(src string, compiled bool, maxSteps int64) diffResult {
	var res diffResult
	prog, err := parser.Parse(src)
	if err != nil {
		res.parseErr = err.Error()
		return res
	}
	in := New(WithSeed(7), WithMaxSteps(maxSteps))
	rec := &traceHooks{}
	in.SetHooks(rec)
	in.SetCompile(compiled)
	if err := in.Run(prog); err != nil {
		res.runErr = err.Error()
		res.stepLimited = strings.Contains(err.Error(), "step limit exceeded")
	}
	res.console = in.Console()
	res.steps = in.Steps()
	res.trace = rec.ev
	return res
}

// diffEngines runs src through both evaluators and reports the first
// divergence, "" if they agree.
func diffEngines(src string) string {
	tw := runEngine(src, false)
	cp := runEngine(src, true)
	if tw.parseErr != cp.parseErr {
		return fmt.Sprintf("parse error mismatch: tree-walk %q vs compiled %q", tw.parseErr, cp.parseErr)
	}
	if tw.parseErr != "" {
		return ""
	}
	if tw.runErr != cp.runErr {
		return fmt.Sprintf("run error mismatch:\n  tree-walk: %q\n  compiled:  %q", tw.runErr, cp.runErr)
	}
	if a, b := strings.Join(tw.console, "\n"), strings.Join(cp.console, "\n"); a != b {
		return fmt.Sprintf("console mismatch:\n--- tree-walk ---\n%s\n--- compiled ---\n%s", a, b)
	}
	// Steps are observable virtual time. The one tolerated difference:
	// at the step-limit fatal, folded constants may overshoot the limit
	// by a few pre-counted steps.
	if !tw.stepLimited && tw.steps != cp.steps {
		return fmt.Sprintf("step mismatch: tree-walk %d vs compiled %d", tw.steps, cp.steps)
	}
	if len(tw.trace) != len(cp.trace) {
		return fmt.Sprintf("trace length mismatch: tree-walk %d vs compiled %d\n%s",
			len(tw.trace), len(cp.trace), firstTraceDiff(tw.trace, cp.trace))
	}
	for i := range tw.trace {
		if tw.trace[i] != cp.trace[i] {
			return fmt.Sprintf("trace mismatch at event %d: tree-walk %q vs compiled %q", i, tw.trace[i], cp.trace[i])
		}
	}
	return ""
}

func firstTraceDiff(a, b []string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("first divergence at event %d: tree-walk %q vs compiled %q", i, a[i], b[i])
		}
	}
	return fmt.Sprintf("traces agree for the first %d events; lengths differ", n)
}

// conformanceCorpus is the differential program table. Every entry must
// behave identically on both evaluators; the fuzzer seeds from it.
var conformanceCorpus = []struct {
	name string
	src  string
}{
	// --- literals, folding, numerics ---
	{"const-arith", `console.log(1 + 2 * 3 - 4 / 2);`},
	{"const-fold-nested", `console.log(((1 + 2) * (3 + 4)) % 5, -(2 + 3), !(1 < 2));`},
	{"string-concat", `console.log("a" + 1 + 2, 1 + 2 + "a", "x" + true + null + undefined);`},
	{"nan-propagation", `var x = 0 / 0; console.log(x, x === x, x !== x, x == x);`},
	{"nan-compare", `console.log(NaN < 1, NaN > 1, NaN <= NaN, 1 >= NaN);`},
	{"signed-zero", `var nz = -0; console.log(nz === 0, 1 / nz, 1 / 0, -1 / 0);`},
	{"int32-ops", `console.log(5 & 3, 5 | 3, 5 ^ 3, ~5, 1 << 31, (1 << 31) >> 31, -1 >>> 0);`},
	{"shift-masking", `console.log(1 << 33, 256 >> 33, 256 >>> 33);`},
	{"float-precision", `console.log(0.1 + 0.2, 0.1 + 0.2 === 0.3, 9007199254740993);`},
	{"number-to-string-keys", `var o = {}; o[1] = "a"; o["1.0"] = "b"; o[1.0] = "c"; console.log(o[1], o["1"], o["1.0"]);`},
	{"loose-vs-strict", `console.log(1 == "1", 1 === "1", null == undefined, null === undefined, "" == 0);`},
	{"modulo", `console.log(7 % 3, -7 % 3, 7 % -3, 7.5 % 2, 0 % 5, 5 % 0);`},
	{"parse-numbers", `console.log(parseInt("42px"), parseFloat("3.14x"), isNaN("abc"), isFinite("10"));`},
	{"infinity-arith", `console.log(Infinity - Infinity, Infinity * 0, 1e308 * 10, -Infinity + 5);`},
	{"string-compare", `console.log("a" < "b", "abc" < "abd", "Z" < "a", "10" < "9", 10 < 9);`},

	// --- variables, scoping, closures ---
	{"var-hoisting", `console.log(x); var x = 5; console.log(x);`},
	{"func-hoisting", `console.log(f()); function f() { return 42; }`},
	{"closure-counter", `function mk() { var n = 0; return function () { n = n + 1; return n; }; } var c = mk(); console.log(c(), c(), c()); var d = mk(); console.log(d(), c());`},
	{"closure-shared-env", `function mk() { var x = 0; return [function () { x = x + 1; }, function () { return x; }]; } var p = mk(); p[0](); p[0](); console.log(p[1]());`},
	{"shadowing-param", `var x = "outer"; function f(x) { x = x + "!"; return x; } console.log(f("inner"), x);`},
	{"shadowing-var", `var x = 1; function f() { var x = 2; function g() { var x = 3; return x; } return g() + x; } console.log(f(), x);`},
	{"closure-in-loop", `var fns = []; for (var i = 0; i < 3; i = i + 1) { fns.push(function () { return i; }); } console.log(fns[0](), fns[1](), fns[2]());`},
	{"closure-in-loop-iife", `var fns = []; for (var i = 0; i < 3; i = i + 1) { fns.push((function (j) { return function () { return j; }; })(i)); } console.log(fns[0](), fns[1](), fns[2]());`},
	{"implicit-global", `function f() { leaked = 99; } f(); console.log(leaked);`},
	{"typeof-unbound", `console.log(typeof nosuch, typeof undefined, typeof null, typeof 1, typeof "s", typeof {}, typeof f); function f() {}`},
	{"nested-closure-depth", `function a() { var va = 1; function b() { var vb = 2; function c() { var vc = 3; return va + vb + vc; } return c(); } return b(); } console.log(a());`},
	{"arguments-object", `function f() { var s = 0; for (var i = 0; i < arguments.length; i = i + 1) { s = s + arguments[i]; } return s; } console.log(f(1, 2, 3), f(), f(10));`},
	{"param-default-undefined", `function f(a, b) { return "" + a + "," + b; } console.log(f(1), f(1, 2), f());`},
	{"this-global", `function f() { return typeof this; } console.log(f());`},
	{"this-method", `var o = { n: 7, get: function () { return this.n; } }; console.log(o.get());`},
	{"var-redeclare", `var x = 1; var x; console.log(x); var x = 2; console.log(x);`},
	{"write-outer-from-inner", `var total = 0; function add(n) { total = total + n; } add(3); add(4); console.log(total);`},
	{"self-reference-recursion", `function fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } console.log(fib(10));`},
	{"mutual-recursion", `function even(n) { if (n === 0) { return true; } return odd(n - 1); } function odd(n) { if (n === 0) { return false; } return even(n - 1); } console.log(even(10), odd(7));`},
	{"func-expr-name", `var f = function named(n) { if (n <= 0) { return 0; } return n + f(n - 1); }; console.log(f(4), f.name, f.length);`},

	// --- control flow ---
	{"early-return-loop", `function find(a, x) { for (var i = 0; i < a.length; i = i + 1) { if (a[i] === x) { return i; } } return -1; } console.log(find([5, 6, 7], 6), find([5], 9));`},
	{"break-continue", `var s = ""; for (var i = 0; i < 10; i = i + 1) { if (i % 2 === 0) { continue; } if (i > 6) { break; } s = s + i; } console.log(s);`},
	{"nested-loop-break", `var c = 0; for (var i = 0; i < 3; i = i + 1) { for (var j = 0; j < 3; j = j + 1) { if (j === 1) { break; } c = c + 1; } } console.log(c);`},
	{"while-loop", `var n = 1; while (n < 100) { n = n * 2; } console.log(n);`},
	{"do-while", `var n = 100; do { n = n + 1; } while (n < 5); console.log(n);`},
	{"for-no-init", `var i = 0; for (; i < 3;) { i = i + 1; } console.log(i);`},
	{"for-in-object", `var o = { a: 1, b: 2, c: 3 }; var ks = ""; for (var k in o) { ks = ks + k; } console.log(ks);`},
	{"for-in-array", `var a = [10, 20, 30]; var s = 0; for (var i in a) { s = s + a[i]; } console.log(s, typeof i);`},
	{"for-in-primitive", `var hit = false; for (var k in 42) { hit = true; } console.log(hit);`},
	{"for-in-early-return", `function first(o) { for (var k in o) { return k; } return "none"; } console.log(first({ z: 1, y: 2 }), first({}));`},
	{"switch-fallthrough", `function f(x) { var s = ""; switch (x) { case 1: s = s + "a"; case 2: s = s + "b"; break; case 3: s = s + "c"; default: s = s + "d"; } return s; } console.log(f(1), f(2), f(3), f(4));`},
	{"switch-return", `function f(x) { switch (x) { case "a": return 1; default: return 0; } } console.log(f("a"), f("b"));`},
	{"cond-expr", `var x = 5; console.log(x > 3 ? "big" : "small", x > 9 ? "b" : x > 4 ? "m" : "s");`},
	{"short-circuit", `var log = ""; function t(x) { log = log + x; return x; } var r = t("a") && t("b") || t("c"); console.log(r, log); log = ""; var q = false && t("x") || t("y"); console.log(q, log);`},
	{"logical-values", `console.log(0 || "dflt", "" || null || 7, 1 && 2 && 3, null && 1, undefined || false);`},
	{"empty-statements", `var x = 1;;; if (x) {;} ; console.log(x);`},
	{"seq-expr", `var a = (1, 2, 3); var b = 0; var c = (b = 5, b + 1); console.log(a, b, c);`},

	// --- errors ---
	{"throw-string", `try { throw "boom"; } catch (e) { console.log("caught", e); }`},
	{"throw-uncaught", `function f() { throw new Error("kaput"); } f();`},
	{"reference-error", `console.log(nope);`},
	{"type-error-call", `var o = {}; o.m();`},
	{"type-error-nullish", `var o = null; console.log(o.x);`},
	{"error-object", `try { null.x; } catch (e) { console.log(e.name, e.message); }`},
	{"catch-shadowing", `var e = "outer"; try { throw "inner"; } catch (e) { console.log(e); } console.log(e);`},
	{"catch-writes-outer", `var x = 1; try { throw 2; } catch (e) { x = e; } console.log(x);`},
	{"catch-closure", `var get; try { throw 42; } catch (e) { get = function () { return e; }; } console.log(get());`},
	{"nested-try", `var s = ""; try { try { throw "a"; } catch (e) { s = s + "c1:" + e; throw "b"; } finally { s = s + ",f1"; } } catch (e) { s = s + ",c2:" + e; } finally { s = s + ",f2"; } console.log(s);`},
	{"finally-runs-on-return", `var s = ""; function f() { try { return "r"; } finally { s = s + "fin"; } } console.log(f(), s);`},
	{"finally-overrides", `function f() { try { return 1; } finally { return 2; } } console.log(f());`},
	{"rethrow", `function f() { try { throw new Error("orig"); } catch (e) { throw e; } } try { f(); } catch (e) { console.log(e.message); }`},
	{"throw-in-loop", `var s = ""; for (var i = 0; i < 5; i = i + 1) { try { if (i === 2) { throw i; } s = s + i; } catch (e) { s = s + "!" + e; } } console.log(s);`},
	{"try-in-catch-fn", `try { throw 1; } catch (e) { function g() { return e + 1; } console.log(g()); }`},
	{"stack-overflow", `function f() { return f(); } f();`},
	{"throw-from-callee", `function inner() { throw new Error("deep"); } function outer() { inner(); } try { outer(); } catch (e) { console.log("got", e.message); }`},

	// --- objects, arrays, properties ---
	{"object-literal", `var o = { a: 1, b: "two", c: { d: 3 } }; console.log(o.a, o.b, o.c.d, o.missing);`},
	{"property-write-chain", `var o = {}; o.a = {}; o.a.b = {}; o.a.b.c = 9; console.log(o.a.b.c);`},
	{"index-vs-member", `var o = { x: 1 }; var k = "x"; console.log(o["x"], o[k], o.x); o[k] = 2; console.log(o.x);`},
	{"delete-prop", `var o = { a: 1, b: 2 }; console.log(delete o.a, o.a, delete o.nosuch, delete 5); var k = "b"; console.log(delete o[k], o.b);`},
	{"in-operator", `var o = { a: undefined }; console.log("a" in o, "b" in o, 0 in [9], 3 in [9]);`},
	{"array-basics", `var a = [1, 2, 3]; a.push(4); console.log(a.length, a[0], a[3], a.pop(), a.length);`},
	{"array-methods", `var a = [3, 1, 2]; console.log(a.join("-"), a.indexOf(2), a.slice(1).join(","), a.concat([4]).join(","));`},
	{"array-holes-growth", `var a = []; a[3] = "x"; console.log(a.length, a[0], a[3]);`},
	{"array-method-identity", `var a = []; console.log(typeof a.push, a.push === a.push);`},
	{"prototype-new", `function P(x) { this.x = x; } P.prototype.getX = function () { return this.x; }; var p = new P(5); console.log(p.getX(), p instanceof P);`},
	{"prototype-shared", `function C() {} C.prototype.n = 1; var a = new C(); var b = new C(); console.log(a.n, b.n); a.n = 5; console.log(a.n, b.n, C.prototype.n);`},
	{"new-returns-object", `function F() { this.a = 1; return { b: 2 }; } function G() { this.a = 1; return 5; } console.log(new F().b, new F().a, new G().a);`},
	{"new-builtin", `var a = new Array(1, 2, 3); var e = new Error("msg"); console.log(a.length, e.message, e instanceof Error);`},
	{"call-apply", `function f(a, b) { return this.n + a + b; } console.log(f.call({ n: 1 }, 2, 3), f.apply({ n: 10 }, [2, 3]));`},
	{"update-exprs", `var i = 5; console.log(i++, i, ++i, i, i--, --i); var a = [1]; console.log(a[0]++, a[0]);`},
	{"compound-assign", `var x = 10; x += 5; x -= 3; x *= 2; x /= 4; x %= 4; console.log(x); var s = "a"; s += "b"; console.log(s); var o = { n: 1 }; o.n += 9; console.log(o.n);`},
	{"string-methods", `var s = "Hello World"; console.log(s.length, s.charAt(1), s.indexOf("o"), s.slice(6), s.toUpperCase(), s.split(" ").length);`},
	{"number-methods", `var n = 3.14159; console.log(n.toFixed(2), (255).toString(16), Math.floor(n), Math.round(n));`},
	{"math-builtins", `console.log(Math.max(1, 9, 4), Math.min(-1, 2), Math.abs(-7), Math.pow(2, 10), Math.sqrt(144));`},
	{"seeded-random", `var a = Math.random(); var b = Math.random(); console.log(a === b, a > 0 && a < 1, b > 0 && b < 1);`},
	{"object-keys-order", `var o = {}; o.z = 1; o.a = 2; o.m = 3; delete o.a; o.a = 4; var ks = ""; for (var k in o) { ks = ks + k; } console.log(ks);`},
	{"nested-data", `var db = { users: [{ name: "ann", tags: ["x", "y"] }, { name: "bob", tags: [] }] }; console.log(db.users[0].tags[1], db.users[1].name, db.users.length);`},
	{"prop-via-this", `function T() { this.v = 1; this.bump = function () { this.v = this.v + 1; return this.v; }; } var t = new T(); console.log(t.bump(), t.bump());`},

	// --- workloads: compiled/tree-walk interplay ---
	{"nbody-ish-kernel", `var pos = []; for (var i = 0; i < 8; i = i + 1) { pos.push({ x: i, y: i * 2 }); } var fsum = 0; for (var i = 0; i < pos.length; i = i + 1) { for (var j = 0; j < pos.length; j = j + 1) { if (i !== j) { var dx = pos[i].x - pos[j].x; var dy = pos[i].y - pos[j].y; fsum = fsum + dx * dx + dy * dy; } } } console.log(fsum);`},
	{"string-builder", `var parts = []; for (var i = 0; i < 5; i = i + 1) { parts.push("p" + i); } console.log(parts.join("|"));`},
	{"memoize", `var cache = {}; function sq(n) { var k = "" + n; if (k in cache) { return cache[k]; } var v = n * n; cache[k] = v; return v; } console.log(sq(4), sq(4), sq(5), cache["4"]);`},
	{"higher-order", `function map(a, f) { var out = []; for (var i = 0; i < a.length; i = i + 1) { out.push(f(a[i], i)); } return out; } console.log(map([1, 2, 3], function (x, i) { return x * 10 + i; }).join(","));`},
	{"step-limit-parity", `var i = 0; while (true) { i = i + 1; }`},
}

// TestConformanceDifferential runs every corpus program through both
// evaluators and requires full observable agreement.
func TestConformanceDifferential(t *testing.T) {
	if len(conformanceCorpus) < 60 {
		t.Fatalf("conformance corpus has %d programs, want >= 60", len(conformanceCorpus))
	}
	for _, tc := range conformanceCorpus {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			if d := diffEngines(tc.src); d != "" {
				t.Fatalf("engines diverge:\n%s\nprogram:\n%s", d, tc.src)
			}
		})
	}
}

// TestConformanceCorpusNontrivial guards against silently-dead corpus
// entries: every program must parse.
func TestConformanceCorpusNontrivial(t *testing.T) {
	for _, tc := range conformanceCorpus {
		if _, err := parser.Parse(tc.src); err != nil {
			t.Errorf("%s: does not parse: %v", tc.name, err)
		}
	}
}
