package interp

import (
	"math"
	"strings"
	"testing"

	"repro/internal/js/parser"
	"repro/internal/js/value"
)

// evalProgram runs src and returns the value of the global `result`.
func evalProgram(t *testing.T, src string) value.Value {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	in := New()
	if err := in.Run(prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	return in.Global("result")
}

func wantNum(t *testing.T, src string, want float64) {
	t.Helper()
	got := evalProgram(t, src)
	if !got.IsNumber() {
		t.Fatalf("result = %s (%s), want number %v", got.Inspect(), got.Kind(), want)
	}
	if math.IsNaN(want) {
		if !math.IsNaN(got.Num()) {
			t.Fatalf("result = %v, want NaN", got.Num())
		}
		return
	}
	if math.Abs(got.Num()-want) > 1e-9 {
		t.Fatalf("result = %v, want %v", got.Num(), want)
	}
}

func wantStr(t *testing.T, src string, want string) {
	t.Helper()
	got := evalProgram(t, src)
	if !got.IsString() || got.Str() != want {
		t.Fatalf("result = %s, want %q", got.Inspect(), want)
	}
}

func wantBool(t *testing.T, src string, want bool) {
	t.Helper()
	got := evalProgram(t, src)
	if got.Kind() != value.KindBool || got.BoolVal() != want {
		t.Fatalf("result = %s, want %v", got.Inspect(), want)
	}
}

func TestArithmetic(t *testing.T) {
	wantNum(t, "var result = 1 + 2 * 3;", 7)
	wantNum(t, "var result = (1 + 2) * 3;", 9)
	wantNum(t, "var result = 10 / 4;", 2.5)
	wantNum(t, "var result = 10 % 3;", 1)
	wantNum(t, "var result = -5 + +3;", -2)
	wantNum(t, "var result = 2 * 3 + 4 * 5;", 26)
	wantNum(t, "var result = 1e3 + 0.5;", 1000.5)
	wantNum(t, "var result = 0xFF;", 255)
	wantNum(t, "var result = 1 / 0;", math.Inf(1))
	wantNum(t, "var result = 0 / 0;", math.NaN())
}

func TestBitwiseOps(t *testing.T) {
	wantNum(t, "var result = 5 & 3;", 1)
	wantNum(t, "var result = 5 | 3;", 7)
	wantNum(t, "var result = 5 ^ 3;", 6)
	wantNum(t, "var result = 1 << 4;", 16)
	wantNum(t, "var result = -8 >> 1;", -4)
	wantNum(t, "var result = -1 >>> 28;", 15)
	wantNum(t, "var result = ~5;", -6)
	wantNum(t, "var result = 2.9 | 0;", 2) // common truncation idiom
	wantNum(t, "var result = -2.9 | 0;", -2)
}

func TestStringOps(t *testing.T) {
	wantStr(t, `var result = "a" + "b";`, "ab")
	wantStr(t, `var result = "n=" + 5;`, "n=5")
	wantStr(t, `var result = 5 + "x";`, "5x")
	wantNum(t, `var result = "abc".length;`, 3)
	wantStr(t, `var result = "hello".toUpperCase();`, "HELLO")
	wantNum(t, `var result = "hello".charCodeAt(1);`, 101)
	wantStr(t, `var result = "hello".substring(1, 3);`, "el")
	wantStr(t, `var result = "a,b,c".split(",")[1];`, "b")
	wantNum(t, `var result = "hello".indexOf("ll");`, 2)
	wantStr(t, `var result = String.fromCharCode(72, 105);`, "Hi")
}

func TestComparisons(t *testing.T) {
	wantBool(t, "var result = 1 < 2;", true)
	wantBool(t, "var result = 2 <= 2;", true)
	wantBool(t, `var result = "a" < "b";`, true)
	wantBool(t, `var result = 1 == "1";`, true)
	wantBool(t, `var result = 1 === "1";`, false)
	wantBool(t, "var result = null == undefined;", true)
	wantBool(t, "var result = null === undefined;", false)
	wantBool(t, "var result = NaN === NaN;", false)
	wantBool(t, "var result = 1 != 2;", true)
	wantBool(t, "var result = 1 !== 1;", false)
}

func TestVarHoistingAndFunctionScope(t *testing.T) {
	// `var` inside a block is function-scoped: the paper's §3.3 example
	// depends on all for-loop iterations sharing one binding.
	wantNum(t, `
		function f() {
			var out = 0;
			for (var i = 0; i < 3; i++) { var x = i; out = x; }
			return x + out; // x visible after the loop
		}
		var result = f();`, 4)
	wantBool(t, `var result = typeof notDeclared === "undefined";`, true)
}

func TestClosures(t *testing.T) {
	wantNum(t, `
		function counter() {
			var n = 0;
			return function () { n++; return n; };
		}
		var c = counter();
		c(); c();
		var result = c();`, 3)
	wantNum(t, `
		var fns = [];
		function mk(i) { return function () { return i; }; }
		for (var i = 0; i < 3; i++) { fns.push(mk(i)); }
		var result = fns[0]() + fns[1]() + fns[2]();`, 3)
}

func TestLoops(t *testing.T) {
	wantNum(t, `
		var s = 0;
		for (var i = 0; i < 10; i++) { s += i; }
		var result = s;`, 45)
	wantNum(t, `
		var s = 0, i = 0;
		while (i < 5) { s += i; i++; }
		var result = s;`, 10)
	wantNum(t, `
		var s = 0, i = 0;
		do { s += i; i++; } while (i < 5);
		var result = s;`, 10)
	wantNum(t, `
		var s = 0;
		for (var i = 0; i < 10; i++) {
			if (i === 3) { continue; }
			if (i === 6) { break; }
			s += i;
		}
		var result = s;`, 0+1+2+4+5)
	wantNum(t, `
		var o = {a: 1, b: 2, c: 3};
		var s = 0;
		for (var k in o) { s += o[k]; }
		var result = s;`, 6)
	wantStr(t, `
		var keys = "";
		var arr = [10, 20];
		arr.x = 99;
		for (var k in arr) { keys += k + ";"; }
		var result = keys;`, "0;1;x;")
}

func TestNestedLoopsAndLabelsFree(t *testing.T) {
	wantNum(t, `
		var s = 0;
		for (var i = 0; i < 4; i++) {
			for (var j = 0; j < 4; j++) {
				if (j > i) { break; }
				s++;
			}
		}
		var result = s;`, 1+2+3+4)
}

func TestObjectsAndPrototypes(t *testing.T) {
	wantNum(t, `
		var o = {x: 1, y: 2};
		o.z = o.x + o.y;
		var result = o.z;`, 3)
	wantNum(t, `
		function Point(x, y) { this.x = x; this.y = y; }
		Point.prototype.norm2 = function () { return this.x * this.x + this.y * this.y; };
		var p = new Point(3, 4);
		var result = p.norm2();`, 25)
	wantBool(t, `
		function A() {}
		var a = new A();
		var result = a instanceof A;`, true)
	wantNum(t, `
		var o = {a: 1};
		delete o.a;
		var result = o.a === undefined ? 1 : 0;`, 1)
	wantBool(t, `var o = {a: 1}; var result = "a" in o;`, true)
}

func TestArrays(t *testing.T) {
	wantNum(t, `var a = [1, 2, 3]; var result = a.length;`, 3)
	wantNum(t, `var a = []; a[5] = 7; var result = a.length;`, 6)
	wantNum(t, `var a = [1, 2]; a.push(3); var result = a[2];`, 3)
	wantNum(t, `var a = [1, 2, 3]; var result = a.pop() + a.length;`, 5)
	wantStr(t, `var result = [1, 2, 3].join("-");`, "1-2-3")
	wantNum(t, `var result = [3, 1, 2].sort()[0];`, 1)
	wantNum(t, `var result = [3, 1, 2].sort(function (a, b) { return b - a; })[0];`, 3)
	wantNum(t, `var result = [1, 2, 3].map(function (x) { return x * x; })[2];`, 9)
	wantNum(t, `var result = [1, 2, 3, 4].filter(function (x) { return x % 2 === 0; }).length;`, 2)
	wantNum(t, `var result = [1, 2, 3, 4].reduce(function (a, b) { return a + b; }, 0);`, 10)
	wantNum(t, `var result = [1, 2, 3, 4].reduce(function (a, b) { return a + b; });`, 10)
	wantNum(t, `
		var s = 0;
		[5, 6, 7].forEach(function (x, i) { s += x * i; });
		var result = s;`, 6+14)
	wantNum(t, `var result = [1, 2, 3].indexOf(2);`, 1)
	wantNum(t, `var result = [1, 2].concat([3, 4]).length;`, 4)
	wantNum(t, `var result = [1, 2, 3, 4].slice(1, 3).length;`, 2)
	wantNum(t, `var a = [1, 2, 3, 4]; a.splice(1, 2); var result = a.length;`, 2)
	wantBool(t, `var result = [1, 2].every(function (x) { return x > 0; });`, true)
	wantBool(t, `var result = [1, 2].some(function (x) { return x > 1; });`, true)
	wantNum(t, `var a = new Array(4); var result = a.length;`, 4)
	wantBool(t, `var result = Array.isArray([]);`, true)
	wantNum(t, `var a = [1,2,3]; a.reverse(); var result = a[0];`, 3)
	wantNum(t, `var a = [1,2,3]; a.length = 1; var result = a.length;`, 1)
}

func TestConditionalsAndLogical(t *testing.T) {
	wantNum(t, "var result = true ? 1 : 2;", 1)
	wantNum(t, "var result = 0 ? 1 : 2;", 2)
	wantNum(t, "var result = 0 || 5;", 5)
	wantNum(t, "var result = 3 && 5;", 5)
	wantNum(t, "var result = 0 && 5;", 0)
	wantNum(t, `var o = null; var result = (o && o.x) || 7;`, 7)
	wantNum(t, `
		var calls = 0;
		function f() { calls++; return true; }
		var x = true || f();
		var result = calls;`, 0)
}

func TestSwitch(t *testing.T) {
	wantStr(t, `
		function f(x) {
			switch (x) {
			case 1: return "one";
			case 2: return "two";
			default: return "many";
			}
		}
		var result = f(1) + f(2) + f(9);`, "onetwomany")
	wantNum(t, `
		var s = 0;
		switch (2) {
		case 1: s += 1;
		case 2: s += 2;
		case 3: s += 4; break;
		case 4: s += 8;
		}
		var result = s;`, 6)
}

func TestExceptions(t *testing.T) {
	wantStr(t, `
		var result = "";
		try { throw "boom"; } catch (e) { result = "caught:" + e; }`, "caught:boom")
	wantStr(t, `
		var result = "";
		try {
			var o = null;
			o.x = 1;
		} catch (e) { result = e.name; }`, "TypeError")
	wantStr(t, `
		var result = "";
		try { nope(); } catch (e) { result = e.name; }`, "ReferenceError")
	wantNum(t, `
		var result = 0;
		try { result = 1; } finally { result += 10; }`, 11)
	wantNum(t, `
		function f() {
			try { throw 1; } catch (e) { return 2; } finally { return 3; }
		}
		var result = f();`, 3)
	wantStr(t, `
		function boom() { throw new Error("oops"); }
		var result = "";
		try { boom(); } catch (e) { result = e.message; }`, "oops")
}

func TestUncaughtExceptionSurfaces(t *testing.T) {
	prog := parser.MustParse(`throw "top";`)
	in := New()
	err := in.Run(prog)
	if err == nil || !strings.Contains(err.Error(), "top") {
		t.Fatalf("err = %v, want uncaught 'top'", err)
	}
}

func TestStackOverflowIsCatchable(t *testing.T) {
	wantStr(t, `
		function f() { return f(); }
		var result = "";
		try { f(); } catch (e) { result = e.name; }`, "RangeError")
}

func TestStepLimit(t *testing.T) {
	prog := parser.MustParse(`while (true) {}`)
	in := New(WithMaxSteps(10_000))
	err := in.Run(prog)
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v, want step limit", err)
	}
}

func TestUpdateExpressions(t *testing.T) {
	wantNum(t, "var x = 5; var result = x++;", 5)
	wantNum(t, "var x = 5; var result = ++x;", 6)
	wantNum(t, "var x = 5; x--; var result = x;", 4)
	wantNum(t, "var a = [1]; a[0]++; var result = a[0];", 2)
	wantNum(t, "var o = {n: 1}; ++o.n; var result = o.n;", 2)
}

func TestCompoundAssignment(t *testing.T) {
	wantNum(t, "var x = 10; x += 5; var result = x;", 15)
	wantNum(t, "var x = 10; x -= 5; var result = x;", 5)
	wantNum(t, "var x = 10; x *= 5; var result = x;", 50)
	wantNum(t, "var x = 10; x /= 4; var result = x;", 2.5)
	wantNum(t, "var x = 10; x %= 3; var result = x;", 1)
	wantNum(t, "var x = 5; x <<= 1; var result = x;", 10)
	wantNum(t, "var x = 5; x &= 3; var result = x;", 1)
	wantNum(t, "var x = 5; x |= 2; var result = x;", 7)
	wantNum(t, "var x = 5; x ^= 1; var result = x;", 4)
	wantStr(t, `var s = "a"; s += "b"; var result = s;`, "ab")
	wantNum(t, `var o = {n: 1}; o.n += 2; var result = o.n;`, 3)
}

func TestTypeof(t *testing.T) {
	wantStr(t, "var result = typeof 1;", "number")
	wantStr(t, `var result = typeof "s";`, "string")
	wantStr(t, "var result = typeof true;", "boolean")
	wantStr(t, "var result = typeof undefined;", "undefined")
	wantStr(t, "var result = typeof null;", "object")
	wantStr(t, "var result = typeof {};", "object")
	wantStr(t, "var result = typeof [];", "object")
	wantStr(t, "var result = typeof function () {};", "function")
}

func TestThisBinding(t *testing.T) {
	wantNum(t, `
		var o = {
			x: 42,
			get: function () { return this.x; }
		};
		var result = o.get();`, 42)
	wantNum(t, `
		function getX() { return this.x; }
		var o = {x: 7};
		var result = getX.call(o);`, 7)
	wantNum(t, `
		function add(a, b) { return this.base + a + b; }
		var result = add.apply({base: 100}, [1, 2]);`, 103)
}

func TestImplicitGlobal(t *testing.T) {
	wantNum(t, `
		function f() { leaked = 9; }
		f();
		var result = leaked;`, 9)
}

func TestMathBuiltins(t *testing.T) {
	wantNum(t, "var result = Math.abs(-3);", 3)
	wantNum(t, "var result = Math.floor(2.7);", 2)
	wantNum(t, "var result = Math.ceil(2.1);", 3)
	wantNum(t, "var result = Math.round(2.5);", 3)
	wantNum(t, "var result = Math.sqrt(16);", 4)
	wantNum(t, "var result = Math.pow(2, 10);", 1024)
	wantNum(t, "var result = Math.max(1, 9, 4);", 9)
	wantNum(t, "var result = Math.min(1, 9, 4);", 1)
	wantNum(t, "var result = Math.atan2(0, 1);", 0)
	wantNum(t, "var result = Math.sin(0);", 0)
	wantNum(t, "var result = Math.cos(0);", 1)
	wantBool(t, "var r = Math.random(); var result = r >= 0 && r < 1;", true)
}

func TestMathRandomDeterministic(t *testing.T) {
	run := func(seed uint64) []float64 {
		in := New(WithSeed(seed))
		prog := parser.MustParse(`var a = Math.random(), b = Math.random(), c = Math.random();`)
		if err := in.Run(prog); err != nil {
			t.Fatal(err)
		}
		return []float64{in.Global("a").Num(), in.Global("b").Num(), in.Global("c").Num()}
	}
	a := run(42)
	b := run(42)
	c := run(43)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("different seeds produced identical streams")
	}
}

func TestConversions(t *testing.T) {
	wantNum(t, `var result = parseInt("42");`, 42)
	wantNum(t, `var result = parseInt("42px");`, 42)
	wantNum(t, `var result = parseInt("ff", 16);`, 255)
	wantNum(t, `var result = parseInt("0x10");`, 16)
	wantNum(t, `var result = parseFloat("2.5e1");`, 25)
	wantNum(t, `var result = Number("3.5");`, 3.5)
	wantBool(t, `var result = isNaN(parseInt("zz"));`, true)
	wantBool(t, `var result = isFinite(1 / 0);`, false)
	wantStr(t, `var result = (255).toString(16);`, "ff")
	wantStr(t, `var result = (3.14159).toFixed(2);`, "3.14")
}

func TestConsoleCapture(t *testing.T) {
	in := New()
	prog := parser.MustParse(`console.log("a", 1); console.log("b");`)
	if err := in.Run(prog); err != nil {
		t.Fatal(err)
	}
	out := in.Console()
	if len(out) != 2 || out[0] != "a 1" || out[1] != "b" {
		t.Fatalf("console = %q", out)
	}
}

func TestRecursion(t *testing.T) {
	wantNum(t, `
		function fib(n) { return n < 2 ? n : fib(n - 1) + fib(n - 2); }
		var result = fib(15);`, 610)
	wantNum(t, `
		function fact(n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
		var result = fact(10);`, 3628800)
}

func TestArgumentsObject(t *testing.T) {
	wantNum(t, `
		function sum() {
			var s = 0;
			for (var i = 0; i < arguments.length; i++) { s += arguments[i]; }
			return s;
		}
		var result = sum(1, 2, 3, 4);`, 10)
}

func TestSeqExpr(t *testing.T) {
	wantNum(t, `
		var s = 0;
		for (var i = 0, j = 10; i < j; i++, j--) { s++; }
		var result = s;`, 5)
}

func TestVirtualClockAdvances(t *testing.T) {
	in := New()
	prog := parser.MustParse(`var s = 0; for (var i = 0; i < 1000; i++) { s += i; }`)
	if err := in.Run(prog); err != nil {
		t.Fatal(err)
	}
	if in.Now() <= 0 {
		t.Fatalf("virtual clock did not advance: %d", in.Now())
	}
	if in.Steps() < 1000 {
		t.Fatalf("steps = %d, want >= 1000", in.Steps())
	}
}

func TestPerformanceNow(t *testing.T) {
	wantBool(t, `
		var t0 = performance.now();
		var s = 0;
		for (var i = 0; i < 100; i++) { s += i; }
		var t1 = performance.now();
		var result = t1 > t0;`, true)
}

func TestFunctionScopingSharedBindingAcrossIterations(t *testing.T) {
	// The exact shape of the paper's Fig. 6 pitfall: `var p` declared in
	// the loop body is one shared binding, so closures created per
	// iteration all see the final value.
	wantNum(t, `
		var fns = [];
		for (var i = 0; i < 3; i++) {
			var p = i;
			fns.push(function () { return p; });
		}
		var result = fns[0]() + fns[1]() + fns[2]();`, 6)
}
