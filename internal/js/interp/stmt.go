package interp

import (
	"repro/internal/js/ast"
	"repro/internal/js/value"
)

// execStmt executes one statement and returns its completion.
func (in *Interp) execStmt(s ast.Stmt, env *Scope) ctrl {
	in.step()
	switch x := s.(type) {
	case *ast.EmptyStmt:
		return ctrlOK
	case *ast.VarDecl:
		for i, name := range x.Names {
			if x.Inits[i] == nil {
				continue
			}
			v := in.evalExpr(x.Inits[i], env)
			in.assignVar(env, name, v)
		}
		return ctrlOK
	case *ast.FuncDecl:
		// value was hoisted at scope setup; re-binding is a no-op unless the
		// declaration is nested in a block that re-executes.
		fn := in.makeFunction(x.Fn, env)
		in.assignVar(env, x.Name, value.ObjectVal(fn))
		return ctrlOK
	case *ast.ExprStmt:
		in.evalExpr(x.X, env)
		return ctrlOK
	case *ast.BlockStmt:
		return in.execBlock(x, env)
	case *ast.IfStmt:
		cond := in.evalExpr(x.Cond, env).ToBool()
		if in.hooks != nil {
			in.hooks.BranchTaken(x.BranchID, cond)
		}
		if cond {
			return in.execStmt(x.Cons, env)
		}
		if x.Alt != nil {
			return in.execStmt(x.Alt, env)
		}
		return ctrlOK
	case *ast.ForStmt:
		return in.execFor(x, env)
	case *ast.WhileStmt:
		return in.execWhile(x, env)
	case *ast.DoWhileStmt:
		return in.execDoWhile(x, env)
	case *ast.ForInStmt:
		return in.execForIn(x, env)
	case *ast.ReturnStmt:
		v := value.Undefined()
		if x.X != nil {
			v = in.evalExpr(x.X, env)
		}
		return ctrl{kind: ctrlReturn, val: v}
	case *ast.BreakStmt:
		return ctrl{kind: ctrlBreak}
	case *ast.ContinueStmt:
		return ctrl{kind: ctrlContinue}
	case *ast.ThrowStmt:
		v := in.evalExpr(x.X, env)
		in.throwValue(v)
		return ctrlOK // unreachable
	case *ast.TryStmt:
		return in.execTry(x, env)
	case *ast.SwitchStmt:
		return in.execSwitch(x, env)
	default:
		panic(&fatal{errUnknownNode(s)})
	}
}

func (in *Interp) execBlock(b *ast.BlockStmt, env *Scope) ctrl {
	for _, s := range b.Body {
		c := in.execStmt(s, env)
		if c.kind != ctrlNormal {
			return c
		}
	}
	return ctrlOK
}

// loopGuard brackets LoopEnter/LoopExit even when the body breaks, returns
// or throws.
func (in *Interp) execFor(x *ast.ForStmt, env *Scope) ctrl {
	if in.hooks != nil {
		in.hooks.LoopEnter(x.Loop)
		defer in.hooks.LoopExit(x.Loop)
	}
	if x.Init != nil {
		if in.hooks != nil {
			in.hooks.LoopHeader(x.Loop, true)
		}
		in.execStmt(x.Init, env)
		if in.hooks != nil {
			in.hooks.LoopHeader(x.Loop, false)
		}
	}
	for {
		if x.Cond != nil {
			if !in.evalExpr(x.Cond, env).ToBool() {
				return ctrlOK
			}
		}
		if in.hooks != nil {
			in.hooks.LoopIter(x.Loop)
		}
		c := in.execStmt(x.Body, env)
		switch c.kind {
		case ctrlBreak:
			return ctrlOK
		case ctrlReturn:
			return c
		}
		if x.Post != nil {
			if in.hooks != nil {
				in.hooks.LoopHeader(x.Loop, true)
			}
			in.evalExpr(x.Post, env)
			if in.hooks != nil {
				in.hooks.LoopHeader(x.Loop, false)
			}
		}
	}
}

func (in *Interp) execWhile(x *ast.WhileStmt, env *Scope) ctrl {
	if in.hooks != nil {
		in.hooks.LoopEnter(x.Loop)
		defer in.hooks.LoopExit(x.Loop)
	}
	for {
		if !in.evalExpr(x.Cond, env).ToBool() {
			return ctrlOK
		}
		if in.hooks != nil {
			in.hooks.LoopIter(x.Loop)
		}
		c := in.execStmt(x.Body, env)
		switch c.kind {
		case ctrlBreak:
			return ctrlOK
		case ctrlReturn:
			return c
		}
	}
}

func (in *Interp) execDoWhile(x *ast.DoWhileStmt, env *Scope) ctrl {
	if in.hooks != nil {
		in.hooks.LoopEnter(x.Loop)
		defer in.hooks.LoopExit(x.Loop)
	}
	for {
		if in.hooks != nil {
			in.hooks.LoopIter(x.Loop)
		}
		c := in.execStmt(x.Body, env)
		switch c.kind {
		case ctrlBreak:
			return ctrlOK
		case ctrlReturn:
			return c
		}
		if !in.evalExpr(x.Cond, env).ToBool() {
			return ctrlOK
		}
	}
}

func (in *Interp) execForIn(x *ast.ForInStmt, env *Scope) ctrl {
	objV := in.evalExpr(x.Obj, env)
	if in.hooks != nil {
		in.hooks.LoopEnter(x.Loop)
		defer in.hooks.LoopExit(x.Loop)
	}
	if !objV.IsObject() {
		return ctrlOK // for-in over primitives iterates nothing here
	}
	keys := objV.Object().OwnKeys()
	for _, k := range keys {
		if in.hooks != nil {
			in.hooks.LoopIter(x.Loop)
			in.hooks.LoopHeader(x.Loop, true)
		}
		in.assignVar(env, x.Name, value.String(k))
		if in.hooks != nil {
			in.hooks.LoopHeader(x.Loop, false)
		}
		c := in.execStmt(x.Body, env)
		switch c.kind {
		case ctrlBreak:
			return ctrlOK
		case ctrlReturn:
			return c
		}
	}
	return ctrlOK
}

func (in *Interp) execTry(x *ast.TryStmt, env *Scope) ctrl {
	c, thrown := in.tryBlock(x.Body, env)
	if thrown != nil && x.Catch != nil {
		catchEnv := NewScope(env)
		in.declareVar(catchEnv, x.CatchName, thrown.val)
		c, thrown = in.tryBlock(x.Catch, catchEnv)
	}
	if x.Finally != nil {
		fc := in.execBlock(x.Finally, env)
		if fc.kind != ctrlNormal {
			return fc // abrupt finally overrides any pending throw/completion
		}
	}
	if thrown != nil {
		panic(thrown)
	}
	return c
}

// tryBlock executes a block, intercepting JS throws (but not fatals).
func (in *Interp) tryBlock(b *ast.BlockStmt, env *Scope) (c ctrl, thrown *jsThrow) {
	defer func() {
		if r := recover(); r != nil {
			if t, ok := r.(*jsThrow); ok {
				thrown = t
				return
			}
			panic(r)
		}
	}()
	return in.execBlock(b, env), nil
}

func (in *Interp) execSwitch(x *ast.SwitchStmt, env *Scope) ctrl {
	d := in.evalExpr(x.Disc, env)
	matched := -1
	for i, cs := range x.Cases {
		if cs.Test == nil {
			continue
		}
		tv := in.evalExpr(cs.Test, env)
		if value.StrictEquals(d, tv) {
			matched = i
			break
		}
	}
	if matched < 0 {
		for i, cs := range x.Cases {
			if cs.Test == nil {
				matched = i
				break
			}
		}
	}
	if matched < 0 {
		return ctrlOK
	}
	for i := matched; i < len(x.Cases); i++ { // fall-through semantics
		for _, s := range x.Cases[i].Body {
			c := in.execStmt(s, env)
			switch c.kind {
			case ctrlBreak:
				return ctrlOK
			case ctrlReturn, ctrlContinue:
				return c
			}
		}
	}
	return ctrlOK
}
