package interp

// slots.go is the pre-resolved scope machinery for compiled execution
// (compile.go/exec.go): function scopes become flat slot arrays whose
// layout is fixed at compile time, and every variable reference lowers
// to one of four reference classes resolved without a map probe on the
// hot path. Catch scopes stay dynamic map scopes exactly as in the tree
// walk, so compiled and tree-walked code interleave on one scope chain.

import (
	"repro/internal/js/ast"
	"repro/internal/js/value"
)

// scopeLayout maps the names of one function scope (this, params,
// arguments, hoisted vars and function declarations) to fixed slot
// indices. Layouts are immutable after compilation and shared by every
// frame of the function across all interpreters.
type scopeLayout struct {
	names []string
	index map[string]int
}

func (l *scopeLayout) add(name string) int {
	if i, ok := l.index[name]; ok {
		return i
	}
	i := len(l.names)
	l.names = append(l.names, name)
	l.index[name] = i
	return i
}

// buildLayout computes the slot layout of one function literal in the
// exact order invoke declares bindings: this, params, arguments, then
// VarNames. Body-level function declarations are listed in VarNames by
// the parser but added here too, defensively.
func buildLayout(decl *ast.FuncLit) *scopeLayout {
	l := &scopeLayout{index: make(map[string]int, len(decl.Params)+len(decl.VarNames)+2)}
	l.add("this")
	for _, p := range decl.Params {
		l.add(p)
	}
	l.add("arguments")
	for _, n := range decl.VarNames {
		l.add(n)
	}
	for _, s := range decl.Body.Body {
		if fd, ok := s.(*ast.FuncDecl); ok {
			l.add(fd.Name)
		}
	}
	return l
}

// frame is the execution state of one compiled activation. fscope is
// the activation's own slot scope; scope is the dynamic head, which
// diverges from fscope only inside catch blocks (which allocate classic
// map scopes, exactly like the tree walk). gcache is the interpreter's
// global-site cache for the unit being executed.
type frame struct {
	in     *Interp
	fscope *Scope
	scope  *Scope
	gcache []*Binding
}

// declareSlot is declareVar for a layout slot: re-declaration keeps the
// binding (only overwriting with a defined value), fresh slots take
// their binding from the frame's backing array, and VarDeclare fires
// exactly when a binding is created — byte-compatible with the tree
// walker's declare/declareVar pair.
func (in *Interp) declareSlot(sc *Scope, backing []Binding, slot int, v value.Value) *Binding {
	if b := sc.slots[slot]; b != nil {
		if !v.IsUndefined() {
			b.V = v
		}
		return b
	}
	b := &backing[slot]
	b.Name = sc.layout.names[slot]
	b.V = v
	sc.slots[slot] = b
	if in.hooks != nil {
		in.hooks.VarDeclare(b.Name, b)
	}
	return b
}

// refKind classifies a compiled variable reference.
type refKind uint8

const (
	// refLocal is a slot in the current frame.
	refLocal refKind = iota
	// refOuter is a slot in an enclosing frame, depth parent hops away.
	refOuter
	// refGlobal resolves against Globals once per (unit, interpreter)
	// and caches the binding — sound because global bindings are never
	// removed or replaced once created.
	refGlobal
	// refDynamic falls back to the scope-chain walk; used inside catch
	// blocks (and functions defined there), whose scopes are dynamic.
	refDynamic
)

// ref is one pre-resolved variable reference.
type ref struct {
	kind  refKind
	depth int
	slot  int
	gsite int
	name  string
}

// binding resolves the reference, nil when unbound. No hooks fire here;
// read/write mirror readVar/assignVar around it.
func (r *ref) binding(fr *frame) *Binding {
	switch r.kind {
	case refLocal:
		return fr.fscope.slots[r.slot]
	case refOuter:
		sc := fr.fscope
		for d := 0; d < r.depth; d++ {
			sc = sc.parent
		}
		return sc.slots[r.slot]
	case refGlobal:
		if b := fr.gcache[r.gsite]; b != nil {
			return b
		}
		b := fr.in.Globals.lookup(r.name)
		if b != nil {
			fr.gcache[r.gsite] = b
		}
		return b
	default:
		return fr.scope.lookup(r.name)
	}
}

// read mirrors readVar: ReferenceError when unbound, VarRead otherwise.
func (r *ref) read(fr *frame) value.Value {
	b := r.binding(fr)
	in := fr.in
	if b == nil {
		in.throwError("ReferenceError", "%s is not defined", r.name)
	}
	if in.hooks != nil {
		in.hooks.VarRead(r.name, b)
	}
	return b.V
}

// write mirrors assignVar: unbound names become implicit globals.
func (r *ref) write(fr *frame, v value.Value) {
	b := r.binding(fr)
	in := fr.in
	if b == nil {
		b = in.declareVar(in.Globals, r.name, v)
		if r.kind == refGlobal {
			fr.gcache[r.gsite] = b
		}
		if in.hooks != nil {
			in.hooks.VarWrite(r.name, b)
		}
		return
	}
	b.V = v
	if in.hooks != nil {
		in.hooks.VarWrite(r.name, b)
	}
}
