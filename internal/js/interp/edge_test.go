package interp

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/value"
)

// ---- coercion corners ----

func TestStringNumberCoercionCorners(t *testing.T) {
	wantStr(t, `var result = "" + null;`, "null")
	wantStr(t, `var result = "" + undefined;`, "undefined")
	wantStr(t, `var result = "" + [1, 2];`, "1,2")
	wantStr(t, `var result = "" + {};`, "[object Object]")
	wantNum(t, `var result = +"";`, 0)
	wantNum(t, `var result = +" 42 ";`, 42)
	wantNum(t, `var result = +"x";`, math.NaN())
	wantNum(t, `var result = null + 1;`, 1)
	wantNum(t, `var result = true + true;`, 2)
	wantNum(t, `var result = undefined + 1;`, math.NaN())
	wantStr(t, `var result = 1 + "2";`, "12")
	wantNum(t, `var result = "3" * "4";`, 12)
	wantNum(t, `var result = "10" - 1;`, 9)
	wantBool(t, `var result = "" == 0;`, true)
	wantBool(t, `var result = " " == 0;`, true)
	wantBool(t, `var result = [] == 0;`, true) // "" -> 0
}

func TestNegativeZeroAndPrecision(t *testing.T) {
	wantBool(t, `var result = -0 === 0;`, true)
	wantNum(t, `var result = 0.1 + 0.2;`, 0.30000000000000004)
	wantBool(t, `var result = 0.1 + 0.2 === 0.3;`, false)
	wantNum(t, `var result = 9007199254740992 + 1;`, 9007199254740992) // 2^53
}

// ---- scoping corners ----

func TestShadowing(t *testing.T) {
	wantNum(t, `
		var x = 1;
		function f() { var x = 2; return x; }
		var result = f() + x;`, 3)
	wantNum(t, `
		var x = 1;
		function f(x) { x = 99; return x; }
		f(x);
		var result = x;`, 1) // params are copies
}

func TestClosureSharedMutation(t *testing.T) {
	wantNum(t, `
		function mk() {
			var n = 0;
			return {
				inc: function () { n++; },
				get: function () { return n; }
			};
		}
		var c = mk();
		c.inc(); c.inc(); c.inc();
		var result = c.get();`, 3)
}

func TestHoistedFunctionCallableBeforeDefinition(t *testing.T) {
	wantNum(t, `
		var result = early();
		function early() { return 5; }`, 5)
}

func TestCatchScopeIsolation(t *testing.T) {
	wantStr(t, `
		var e = "outer";
		try { throw "inner"; } catch (e) { /* shadows */ }
		var result = e;`, "outer")
}

// ---- control flow corners ----

func TestNestedTryFinallyOrder(t *testing.T) {
	wantStr(t, `
		var log = "";
		function f() {
			try {
				try {
					throw "x";
				} finally { log += "inner;"; }
			} catch (e) {
				log += "caught;";
			} finally {
				log += "outer;";
			}
			return log;
		}
		var result = f();`, "inner;caught;outer;")
}

func TestContinueInsideNestedSwitch(t *testing.T) {
	wantNum(t, `
		var s = 0;
		for (var i = 0; i < 6; i++) {
			switch (i % 2) {
			case 0:
				continue;
			}
			s += i;
		}
		var result = s;`, 1+3+5)
}

func TestDoWhileRunsBodyOnce(t *testing.T) {
	wantNum(t, `
		var n = 0;
		do { n++; } while (false);
		var result = n;`, 1)
}

func TestForInSkipsDeleted(t *testing.T) {
	wantStr(t, `
		var o = {a: 1, b: 2, c: 3};
		delete o.b;
		var ks = "";
		for (var k in o) { ks += k; }
		var result = ks;`, "ac")
}

// ---- object corners ----

func TestPrototypeMethodOverride(t *testing.T) {
	wantStr(t, `
		function A() {}
		A.prototype.who = function () { return "proto"; };
		var a = new A();
		var before = a.who();
		a.who = function () { return "own"; };
		var result = before + "/" + a.who();`, "proto/own")
}

func TestConstructorReturningObject(t *testing.T) {
	wantNum(t, `
		function F() { this.x = 1; return {x: 42}; }
		var result = new F().x;`, 42)
	wantNum(t, `
		function G() { this.x = 1; return 99; } // primitive return ignored
		var result = new G().x;`, 1)
}

func TestInstanceofThroughChain(t *testing.T) {
	wantBool(t, `
		function Base() {}
		function Derived() {}
		Derived.prototype = new Base();
		var d = new Derived();
		var result = d instanceof Base;`, true)
}

func TestMethodExtractionLosesThis(t *testing.T) {
	wantBool(t, `
		var o = {v: 7, get: function () { return this; }};
		var f = o.get;
		var result = f() === undefined;`, true)
}

// ---- failure injection ----

func TestDeepProgramRecursionSurfacesRangeError(t *testing.T) {
	prog := parser.MustParse(`
function down(n) { return n === 0 ? 0 : down(n - 1); }
down(100000);`)
	in := New()
	err := in.Run(prog)
	if err == nil || !strings.Contains(err.Error(), "RangeError") {
		t.Fatalf("err = %v, want RangeError", err)
	}
}

func TestStepLimitInsideCallback(t *testing.T) {
	prog := parser.MustParse(`
[1].forEach(function f(x) { while (true) {} });`)
	in := New(WithMaxSteps(50_000))
	err := in.Run(prog)
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v", err)
	}
}

func TestNullDerefInLoopIsCatchable(t *testing.T) {
	wantNum(t, `
		var hits = 0;
		var xs = [1, null, 3];
		for (var i = 0; i < xs.length; i++) {
			try { hits += xs[i].valueOfMissing === undefined ? 1 : 0; }
			catch (e) { hits += 100; }
		}
		var result = hits;`, 102)
}

func TestHooksSurviveThrowingProgram(t *testing.T) {
	// loop hooks must stay balanced even when a throw unwinds mid-loop
	in := New()
	bal := &balanceHooks{}
	in.SetHooks(bal)
	err := in.Run(parser.MustParse(`
try {
  for (var i = 0; i < 10; i++) {
    if (i === 3) { throw "stop"; }
  }
} catch (e) {}
for (var j = 0; j < 2; j++) {}
`))
	if err != nil {
		t.Fatal(err)
	}
	if bal.depth != 0 {
		t.Errorf("loop enter/exit unbalanced after throw: depth %d", bal.depth)
	}
	if bal.maxDepth == 0 {
		t.Error("hooks never fired")
	}
}

type balanceHooks struct {
	NopHooks
	depth    int
	maxDepth int
}

func (b *balanceHooks) LoopEnter(ast.LoopID) {
	b.depth++
	if b.depth > b.maxDepth {
		b.maxDepth = b.depth
	}
}
func (b *balanceHooks) LoopExit(ast.LoopID) { b.depth-- }

// ---- interpreter arithmetic vs Go float64 (property) ----

func TestArithmeticMatchesGoSemantics(t *testing.T) {
	in := New()
	prog := parser.MustParse(`function add(a,b){return a+b;} function mul(a,b){return a*b;} function div(a,b){return a/b;} function mod(a,b){return a%b;}`)
	if err := in.Run(prog); err != nil {
		t.Fatal(err)
	}
	call := func(name string, a, b float64) float64 {
		v, err := in.SafeCall(in.Global(name), value.Undefined(),
			[]value.Value{value.Number(a), value.Number(b)})
		if err != nil {
			t.Fatal(err)
		}
		return v.Num()
	}
	f := func(a, b float64) bool {
		if eq := call("add", a, b); eq != a+b && !(math.IsNaN(eq) && math.IsNaN(a+b)) {
			return false
		}
		if eq := call("mul", a, b); eq != a*b && !(math.IsNaN(eq) && math.IsNaN(a*b)) {
			return false
		}
		if eq := call("div", a, b); eq != a/b && !(math.IsNaN(eq) && math.IsNaN(a/b)) {
			return false
		}
		want := math.Mod(a, b)
		if eq := call("mod", a, b); eq != want && !(math.IsNaN(eq) && math.IsNaN(want)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// ---- virtual clock invariants ----

func TestClockMonotonicAcrossHostOps(t *testing.T) {
	in := New()
	t0 := in.Now()
	in.EmitHostOp("dom", "x", 1000)
	t1 := in.Now()
	in.AdvanceTime(500)
	t2 := in.Now()
	if !(t0 < t1 && t1 < t2) {
		t.Errorf("clock not monotonic: %d %d %d", t0, t1, t2)
	}
	if in.ScriptTime() != t1 {
		t.Errorf("idle counted as script time")
	}
}
