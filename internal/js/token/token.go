// Package token defines the lexical tokens of the JavaScript subset
// understood by the analysis engine.
//
// The subset is ES5-flavoured: it covers the language features the paper's
// case-study workloads exercise (functions, closures, objects, arrays,
// prototypal method calls, all loop forms, the full operator set) while
// omitting features irrelevant to the study (regex literals, with, eval).
package token

import "fmt"

// Type identifies the lexical class of a token.
type Type int

// Token types. Operator tokens are grouped by precedence tier to keep the
// parser's binding-power table readable.
const (
	ILLEGAL Type = iota
	EOF

	// Literals and identifiers.
	IDENT  // foo
	NUMBER // 12, 1.5, 0xFF, 1e-3
	STRING // "abc", 'abc'

	// Punctuation.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	COMMA    // ,
	SEMI     // ;
	COLON    // :
	QUESTION // ?
	DOT      // .

	// Assignment operators.
	ASSIGN        // =
	PLUSASSIGN    // +=
	MINUSASSIGN   // -=
	STARASSIGN    // *=
	SLASHASSIGN   // /=
	PERCENTASSIGN // %=
	ANDASSIGN     // &=
	ORASSIGN      // |=
	XORASSIGN     // ^=
	SHLASSIGN     // <<=
	SHRASSIGN     // >>=
	USHRASSIGN    // >>>=

	// Binary / unary operators.
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	LAND     // &&
	LOR      // ||
	AND      // &
	OR       // |
	XOR      // ^
	SHL      // <<
	SHR      // >>
	USHR     // >>>
	NOT      // !
	BITNOT   // ~
	LT       // <
	GT       // >
	LE       // <=
	GE       // >=
	EQ       // ==
	NEQ      // !=
	STRICTEQ // ===
	STRICTNE // !==
	INC      // ++
	DEC      // --

	// Keywords.
	VAR
	FUNCTION
	RETURN
	IF
	ELSE
	FOR
	WHILE
	DO
	BREAK
	CONTINUE
	NEW
	DELETE
	TYPEOF
	INSTANCEOF
	IN
	THIS
	NULL
	TRUE
	FALSE
	UNDEFINED
	SWITCH
	CASE
	DEFAULT
	THROW
	TRY
	CATCH
	FINALLY
)

var names = map[Type]string{
	ILLEGAL:       "ILLEGAL",
	EOF:           "EOF",
	IDENT:         "IDENT",
	NUMBER:        "NUMBER",
	STRING:        "STRING",
	LPAREN:        "(",
	RPAREN:        ")",
	LBRACE:        "{",
	RBRACE:        "}",
	LBRACKET:      "[",
	RBRACKET:      "]",
	COMMA:         ",",
	SEMI:          ";",
	COLON:         ":",
	QUESTION:      "?",
	DOT:           ".",
	ASSIGN:        "=",
	PLUSASSIGN:    "+=",
	MINUSASSIGN:   "-=",
	STARASSIGN:    "*=",
	SLASHASSIGN:   "/=",
	PERCENTASSIGN: "%=",
	ANDASSIGN:     "&=",
	ORASSIGN:      "|=",
	XORASSIGN:     "^=",
	SHLASSIGN:     "<<=",
	SHRASSIGN:     ">>=",
	USHRASSIGN:    ">>>=",
	PLUS:          "+",
	MINUS:         "-",
	STAR:          "*",
	SLASH:         "/",
	PERCENT:       "%",
	LAND:          "&&",
	LOR:           "||",
	AND:           "&",
	OR:            "|",
	XOR:           "^",
	SHL:           "<<",
	SHR:           ">>",
	USHR:          ">>>",
	NOT:           "!",
	BITNOT:        "~",
	LT:            "<",
	GT:            ">",
	LE:            "<=",
	GE:            ">=",
	EQ:            "==",
	NEQ:           "!=",
	STRICTEQ:      "===",
	STRICTNE:      "!==",
	INC:           "++",
	DEC:           "--",
	VAR:           "var",
	FUNCTION:      "function",
	RETURN:        "return",
	IF:            "if",
	ELSE:          "else",
	FOR:           "for",
	WHILE:         "while",
	DO:            "do",
	BREAK:         "break",
	CONTINUE:      "continue",
	NEW:           "new",
	DELETE:        "delete",
	TYPEOF:        "typeof",
	INSTANCEOF:    "instanceof",
	IN:            "in",
	THIS:          "this",
	NULL:          "null",
	TRUE:          "true",
	FALSE:         "false",
	UNDEFINED:     "undefined",
	SWITCH:        "switch",
	CASE:          "case",
	DEFAULT:       "default",
	THROW:         "throw",
	TRY:           "try",
	CATCH:         "catch",
	FINALLY:       "finally",
}

// String returns the canonical spelling of the token type.
func (t Type) String() string {
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", int(t))
}

var keywords = map[string]Type{
	"var":        VAR,
	"function":   FUNCTION,
	"return":     RETURN,
	"if":         IF,
	"else":       ELSE,
	"for":        FOR,
	"while":      WHILE,
	"do":         DO,
	"break":      BREAK,
	"continue":   CONTINUE,
	"new":        NEW,
	"delete":     DELETE,
	"typeof":     TYPEOF,
	"instanceof": INSTANCEOF,
	"in":         IN,
	"this":       THIS,
	"null":       NULL,
	"true":       TRUE,
	"false":      FALSE,
	"undefined":  UNDEFINED,
	"switch":     SWITCH,
	"case":       CASE,
	"default":    DEFAULT,
	"throw":      THROW,
	"try":        TRY,
	"catch":      CATCH,
	"finally":    FINALLY,
}

// Lookup maps an identifier spelling to its keyword type, or IDENT.
func Lookup(ident string) Type {
	if t, ok := keywords[ident]; ok {
		return t
	}
	return IDENT
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a single lexical token with its source position and literal text.
type Token struct {
	Type    Type
	Literal string
	Pos     Pos
}

func (t Token) String() string {
	switch t.Type {
	case IDENT, NUMBER, STRING:
		return fmt.Sprintf("%s(%q)", names[t.Type], t.Literal)
	default:
		return t.Type.String()
	}
}

// IsAssign reports whether the token is an assignment operator.
func (t Type) IsAssign() bool {
	return t >= ASSIGN && t <= USHRASSIGN
}

// CompoundOp returns the underlying binary operator of a compound
// assignment (e.g. PLUS for "+="). It panics for plain ASSIGN.
func (t Type) CompoundOp() Type {
	switch t {
	case PLUSASSIGN:
		return PLUS
	case MINUSASSIGN:
		return MINUS
	case STARASSIGN:
		return STAR
	case SLASHASSIGN:
		return SLASH
	case PERCENTASSIGN:
		return PERCENT
	case ANDASSIGN:
		return AND
	case ORASSIGN:
		return OR
	case XORASSIGN:
		return XOR
	case SHLASSIGN:
		return SHL
	case SHRASSIGN:
		return SHR
	case USHRASSIGN:
		return USHR
	}
	panic("token: CompoundOp on non-compound " + t.String())
}
