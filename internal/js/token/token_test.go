package token

import "testing"

func TestLookup(t *testing.T) {
	if Lookup("while") != WHILE || Lookup("function") != FUNCTION {
		t.Error("keyword lookup")
	}
	if Lookup("whilee") != IDENT || Lookup("Function") != IDENT || Lookup("") != IDENT {
		t.Error("non-keywords must be IDENT")
	}
}

func TestIsAssign(t *testing.T) {
	yes := []Type{ASSIGN, PLUSASSIGN, MINUSASSIGN, STARASSIGN, SLASHASSIGN,
		PERCENTASSIGN, ANDASSIGN, ORASSIGN, XORASSIGN, SHLASSIGN, SHRASSIGN, USHRASSIGN}
	for _, tt := range yes {
		if !tt.IsAssign() {
			t.Errorf("%v.IsAssign() = false", tt)
		}
	}
	no := []Type{PLUS, EQ, LT, IDENT, NUMBER, INC, LAND}
	for _, tt := range no {
		if tt.IsAssign() {
			t.Errorf("%v.IsAssign() = true", tt)
		}
	}
}

func TestCompoundOp(t *testing.T) {
	cases := map[Type]Type{
		PLUSASSIGN: PLUS, MINUSASSIGN: MINUS, STARASSIGN: STAR,
		SLASHASSIGN: SLASH, PERCENTASSIGN: PERCENT, ANDASSIGN: AND,
		ORASSIGN: OR, XORASSIGN: XOR, SHLASSIGN: SHL, SHRASSIGN: SHR,
		USHRASSIGN: USHR,
	}
	for compound, want := range cases {
		if got := compound.CompoundOp(); got != want {
			t.Errorf("%v.CompoundOp() = %v, want %v", compound, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("CompoundOp on plain ASSIGN must panic")
		}
	}()
	ASSIGN.CompoundOp()
}

func TestStrings(t *testing.T) {
	if PLUS.String() != "+" || USHRASSIGN.String() != ">>>=" || FUNCTION.String() != "function" {
		t.Error("type strings")
	}
	if Type(9999).String() == "" {
		t.Error("unknown type string empty")
	}
	tok := Token{Type: NUMBER, Literal: "42", Pos: Pos{Line: 3, Col: 7}}
	if tok.String() != `NUMBER("42")` {
		t.Errorf("token string = %q", tok.String())
	}
	if tok.Pos.String() != "3:7" {
		t.Errorf("pos = %q", tok.Pos.String())
	}
	if (Token{Type: LBRACE}).String() != "{" {
		t.Error("punct token string")
	}
}
