// Package lexer implements a hand-written scanner for the JavaScript
// subset. It produces the token stream consumed by the parser and by the
// proxy's source rewriter.
package lexer

import (
	"fmt"
	"strings"

	"repro/internal/js/token"
)

// Lexer scans JavaScript source text into tokens.
type Lexer struct {
	src  string
	pos  int // byte offset of next unread char
	line int
	col  int
	errs []error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the scan errors accumulated so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(p token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("lex %s: %s", p, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) peekAt(n int) byte {
	if l.pos+n >= len(l.src) {
		return 0
	}
	return l.src[l.pos+n]
}

func (l *Lexer) advance() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

func (l *Lexer) skipSpaceAndComments() {
	for {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.peek() != '\n' && l.peek() != 0 {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			start := token.Pos{Line: l.line, Col: l.col}
			l.advance()
			l.advance()
			closed := false
			for l.peek() != 0 {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next scans and returns the next token. After EOF it keeps returning EOF.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := token.Pos{Line: l.line, Col: l.col}
	c := l.peek()
	if c == 0 {
		return token.Token{Type: token.EOF, Pos: pos}
	}

	switch {
	case isIdentStart(c):
		start := l.pos
		for isIdentPart(l.peek()) {
			l.advance()
		}
		lit := l.src[start:l.pos]
		return token.Token{Type: token.Lookup(lit), Literal: lit, Pos: pos}
	case isDigit(c) || (c == '.' && isDigit(l.peekAt(1))):
		return l.scanNumber(pos)
	case c == '"' || c == '\'':
		return l.scanString(pos)
	}

	l.advance()
	mk := func(t token.Type) token.Token {
		return token.Token{Type: t, Literal: t.String(), Pos: pos}
	}
	// two/three-char operator helper: consume if next chars match
	match := func(b byte) bool {
		if l.peek() == b {
			l.advance()
			return true
		}
		return false
	}

	switch c {
	case '(':
		return mk(token.LPAREN)
	case ')':
		return mk(token.RPAREN)
	case '{':
		return mk(token.LBRACE)
	case '}':
		return mk(token.RBRACE)
	case '[':
		return mk(token.LBRACKET)
	case ']':
		return mk(token.RBRACKET)
	case ',':
		return mk(token.COMMA)
	case ';':
		return mk(token.SEMI)
	case ':':
		return mk(token.COLON)
	case '?':
		return mk(token.QUESTION)
	case '.':
		return mk(token.DOT)
	case '~':
		return mk(token.BITNOT)
	case '+':
		if match('+') {
			return mk(token.INC)
		}
		if match('=') {
			return mk(token.PLUSASSIGN)
		}
		return mk(token.PLUS)
	case '-':
		if match('-') {
			return mk(token.DEC)
		}
		if match('=') {
			return mk(token.MINUSASSIGN)
		}
		return mk(token.MINUS)
	case '*':
		if match('=') {
			return mk(token.STARASSIGN)
		}
		return mk(token.STAR)
	case '/':
		if match('=') {
			return mk(token.SLASHASSIGN)
		}
		return mk(token.SLASH)
	case '%':
		if match('=') {
			return mk(token.PERCENTASSIGN)
		}
		return mk(token.PERCENT)
	case '&':
		if match('&') {
			return mk(token.LAND)
		}
		if match('=') {
			return mk(token.ANDASSIGN)
		}
		return mk(token.AND)
	case '|':
		if match('|') {
			return mk(token.LOR)
		}
		if match('=') {
			return mk(token.ORASSIGN)
		}
		return mk(token.OR)
	case '^':
		if match('=') {
			return mk(token.XORASSIGN)
		}
		return mk(token.XOR)
	case '!':
		if match('=') {
			if match('=') {
				return mk(token.STRICTNE)
			}
			return mk(token.NEQ)
		}
		return mk(token.NOT)
	case '=':
		if match('=') {
			if match('=') {
				return mk(token.STRICTEQ)
			}
			return mk(token.EQ)
		}
		return mk(token.ASSIGN)
	case '<':
		if match('<') {
			if match('=') {
				return mk(token.SHLASSIGN)
			}
			return mk(token.SHL)
		}
		if match('=') {
			return mk(token.LE)
		}
		return mk(token.LT)
	case '>':
		if match('>') {
			if match('>') {
				if match('=') {
					return mk(token.USHRASSIGN)
				}
				return mk(token.USHR)
			}
			if match('=') {
				return mk(token.SHRASSIGN)
			}
			return mk(token.SHR)
		}
		if match('=') {
			return mk(token.GE)
		}
		return mk(token.GT)
	}

	l.errorf(pos, "unexpected character %q", string(c))
	return token.Token{Type: token.ILLEGAL, Literal: string(c), Pos: pos}
}

func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.pos
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance()
		l.advance()
		if !isHexDigit(l.peek()) {
			l.errorf(pos, "malformed hex literal")
		}
		for isHexDigit(l.peek()) {
			l.advance()
		}
		return token.Token{Type: token.NUMBER, Literal: l.src[start:l.pos], Pos: pos}
	}
	for isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' {
		l.advance()
		for isDigit(l.peek()) {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.pos
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if !isDigit(l.peek()) {
			// not an exponent after all (e.g. `1e` followed by ident char)
			l.pos = save
		} else {
			for isDigit(l.peek()) {
				l.advance()
			}
		}
	}
	return token.Token{Type: token.NUMBER, Literal: l.src[start:l.pos], Pos: pos}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	quote := l.advance()
	var sb strings.Builder
	for {
		c := l.peek()
		if c == 0 || c == '\n' {
			l.errorf(pos, "unterminated string literal")
			break
		}
		l.advance()
		if c == quote {
			break
		}
		if c == '\\' {
			e := l.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case '\\':
				sb.WriteByte('\\')
			case '\'':
				sb.WriteByte('\'')
			case '"':
				sb.WriteByte('"')
			case '0':
				sb.WriteByte(0)
			default:
				sb.WriteByte(e)
			}
			continue
		}
		sb.WriteByte(c)
	}
	return token.Token{Type: token.STRING, Literal: sb.String(), Pos: pos}
}

// ScanAll tokenizes the whole input, excluding the trailing EOF token.
func ScanAll(src string) ([]token.Token, []error) {
	l := New(src)
	var out []token.Token
	for {
		t := l.Next()
		if t.Type == token.EOF {
			break
		}
		out = append(out, t)
	}
	return out, l.Errors()
}
