package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/js/token"
)

func kinds(t *testing.T, src string) []token.Type {
	t.Helper()
	toks, errs := ScanAll(src)
	if len(errs) > 0 {
		t.Fatalf("scan %q: %v", src, errs)
	}
	out := make([]token.Type, len(toks))
	for i, tk := range toks {
		out[i] = tk.Type
	}
	return out
}

func TestOperators(t *testing.T) {
	cases := map[string]token.Type{
		"+": token.PLUS, "-": token.MINUS, "*": token.STAR, "/": token.SLASH,
		"%": token.PERCENT, "=": token.ASSIGN, "==": token.EQ, "===": token.STRICTEQ,
		"!": token.NOT, "!=": token.NEQ, "!==": token.STRICTNE,
		"<": token.LT, "<=": token.LE, ">": token.GT, ">=": token.GE,
		"<<": token.SHL, ">>": token.SHR, ">>>": token.USHR,
		"&": token.AND, "&&": token.LAND, "|": token.OR, "||": token.LOR,
		"^": token.XOR, "~": token.BITNOT,
		"++": token.INC, "--": token.DEC,
		"+=": token.PLUSASSIGN, "-=": token.MINUSASSIGN, "*=": token.STARASSIGN,
		"/=": token.SLASHASSIGN, "%=": token.PERCENTASSIGN,
		"<<=": token.SHLASSIGN, ">>=": token.SHRASSIGN, ">>>=": token.USHRASSIGN,
		"&=": token.ANDASSIGN, "|=": token.ORASSIGN, "^=": token.XORASSIGN,
		"(": token.LPAREN, ")": token.RPAREN, "{": token.LBRACE, "}": token.RBRACE,
		"[": token.LBRACKET, "]": token.RBRACKET, ",": token.COMMA, ";": token.SEMI,
		":": token.COLON, "?": token.QUESTION, ".": token.DOT,
	}
	for src, want := range cases {
		got := kinds(t, src)
		if len(got) != 1 || got[0] != want {
			t.Errorf("%q -> %v, want [%v]", src, got, want)
		}
	}
}

func TestKeywordsVsIdentifiers(t *testing.T) {
	got := kinds(t, "var function if else for while do break continue return new delete typeof instanceof in this null true false undefined switch case default throw try catch finally")
	want := []token.Type{
		token.VAR, token.FUNCTION, token.IF, token.ELSE, token.FOR, token.WHILE,
		token.DO, token.BREAK, token.CONTINUE, token.RETURN, token.NEW, token.DELETE,
		token.TYPEOF, token.INSTANCEOF, token.IN, token.THIS, token.NULL, token.TRUE,
		token.FALSE, token.UNDEFINED, token.SWITCH, token.CASE, token.DEFAULT,
		token.THROW, token.TRY, token.CATCH, token.FINALLY,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	// near-keywords are identifiers
	for _, id := range []string{"vars", "iffy", "ForEach", "newish", "_var", "$do"} {
		got := kinds(t, id)
		if len(got) != 1 || got[0] != token.IDENT {
			t.Errorf("%q -> %v, want IDENT", id, got)
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := []string{"0", "42", "3.14", ".5", "1e3", "1e-3", "2.5E+7", "0xFF", "0x0", "0Xabc"}
	for _, src := range cases {
		toks, errs := ScanAll(src)
		if len(errs) > 0 {
			t.Errorf("%q: %v", src, errs)
			continue
		}
		if len(toks) != 1 || toks[0].Type != token.NUMBER {
			t.Errorf("%q -> %v, want one NUMBER", src, toks)
		}
		if toks[0].Literal != src {
			t.Errorf("%q literal %q", src, toks[0].Literal)
		}
	}
}

func TestStrings(t *testing.T) {
	cases := map[string]string{
		`"hello"`:      "hello",
		`'world'`:      "world",
		`"a\"b"`:       `a"b`,
		`'a\'b'`:       "a'b",
		`"tab\there"`:  "tab\there",
		`"nl\nnl"`:     "nl\nnl",
		`"cr\rcr"`:     "cr\rcr",
		`"back\\"`:     `back\`,
		`""`:           "",
		`"unicode ok"`: "unicode ok",
	}
	for src, want := range cases {
		toks, errs := ScanAll(src)
		if len(errs) > 0 {
			t.Errorf("%q: %v", src, errs)
			continue
		}
		if len(toks) != 1 || toks[0].Type != token.STRING || toks[0].Literal != want {
			t.Errorf("%q -> %+v, want STRING %q", src, toks, want)
		}
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, `
// a line comment
var x = 1; // trailing
/* block
   comment */ var y /* inline */ = 2;
`)
	want := []token.Type{
		token.VAR, token.IDENT, token.ASSIGN, token.NUMBER, token.SEMI,
		token.VAR, token.IDENT, token.ASSIGN, token.NUMBER, token.SEMI,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPositions(t *testing.T) {
	toks, _ := ScanAll("var x;\n  y = 2;")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("var at %v", toks[0].Pos)
	}
	// y is on line 2, col 3
	var yTok token.Token
	for _, tk := range toks {
		if tk.Literal == "y" {
			yTok = tk
		}
	}
	if yTok.Pos.Line != 2 || yTok.Pos.Col != 3 {
		t.Errorf("y at %v, want 2:3", yTok.Pos)
	}
}

func TestErrors(t *testing.T) {
	_, errs := ScanAll(`"unterminated`)
	if len(errs) == 0 {
		t.Error("unterminated string not reported")
	}
	_, errs = ScanAll("/* open block")
	if len(errs) == 0 {
		t.Error("unterminated block comment not reported")
	}
	toks, errs := ScanAll("a # b")
	if len(errs) == 0 {
		t.Error("illegal character not reported")
	}
	hasIllegal := false
	for _, tk := range toks {
		if tk.Type == token.ILLEGAL {
			hasIllegal = true
		}
	}
	if !hasIllegal {
		t.Error("no ILLEGAL token emitted")
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New("x")
	l.Next() // x
	for i := 0; i < 3; i++ {
		if tk := l.Next(); tk.Type != token.EOF {
			t.Fatalf("Next after end = %v, want EOF", tk)
		}
	}
}

// Property: joining token literals with spaces re-lexes to the same kinds
// (a weak but broad lexer stability property).
func TestRelexProperty(t *testing.T) {
	vocab := []string{
		"var", "x", "=", "1", "+", "2.5", ";", "(", ")", "{", "}", "[", "]",
		"&&", "||", "!", "===", "foo", `"str"`, "0xFF", "<<", ">>>", "?", ":",
		"typeof", "instanceof", "++", "--",
	}
	f := func(idxs []uint8) bool {
		if len(idxs) > 40 {
			idxs = idxs[:40]
		}
		parts := make([]string, len(idxs))
		for i, ix := range idxs {
			parts[i] = vocab[int(ix)%len(vocab)]
		}
		src := strings.Join(parts, " ")
		t1, errs1 := ScanAll(src)
		if len(errs1) > 0 {
			return false
		}
		// print back literal stream and re-lex
		lits := make([]string, len(t1))
		for i, tk := range t1 {
			if tk.Type == token.STRING {
				lits[i] = `"` + tk.Literal + `"`
			} else {
				lits[i] = tk.Literal
			}
		}
		t2, errs2 := ScanAll(strings.Join(lits, " "))
		if len(errs2) > 0 || len(t1) != len(t2) {
			return false
		}
		for i := range t1 {
			if t1[i].Type != t2[i].Type {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
