package refactor

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/parser"
)

func runGlobal(t *testing.T, src, global string) string {
	t.Helper()
	in := interp.New()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	if err := in.Run(prog); err != nil {
		t.Fatalf("run: %v\n%s", err, src)
	}
	return in.Global(global).ToString()
}

func TestForEachBasicRewrite(t *testing.T) {
	src := `
var a = [1, 2, 3, 4];
var sum = 0;
for (var i = 0; i < a.length; i++) {
  sum += a[i] * 2;
}
`
	res, err := ForEach(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewritten() != 1 {
		t.Fatalf("rewrote %d loops, want 1; outcomes: %+v", res.Rewritten(), res.Outcomes)
	}
	if !strings.Contains(res.Source, "a.forEach(function") {
		t.Fatalf("no forEach in output:\n%s", res.Source)
	}
	if got := runGlobal(t, res.Source, "sum"); got != "20" {
		t.Errorf("sum = %s, want 20", got)
	}
	// behaviour identical to the original
	if orig := runGlobal(t, src, "sum"); orig != "20" {
		t.Errorf("original sum = %s", orig)
	}
}

func TestForEachKeepsWritesThroughIndex(t *testing.T) {
	src := `
var a = [1, 2, 3];
for (var i = 0; i < a.length; i++) {
  a[i] = a[i] + 10;
}
var out = a.join(",");
`
	res, err := ForEach(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewritten() != 1 {
		t.Fatalf("outcomes: %+v", res.Outcomes)
	}
	// the write stays an indexed store; the read becomes the element param
	if !strings.Contains(res.Source, "a[i] = elem + 10") {
		t.Fatalf("unexpected rewrite:\n%s", res.Source)
	}
	if got := runGlobal(t, res.Source, "out"); got != "11,12,13" {
		t.Errorf("out = %s", got)
	}
}

func TestForEachRejectsBreakContinueReturn(t *testing.T) {
	cases := map[string]string{
		"break": `
var a = [1];
for (var i = 0; i < a.length; i++) { if (a[i] > 0) { break; } }`,
		"continue": `
var a = [1];
for (var i = 0; i < a.length; i++) { if (a[i] > 0) { continue; } }`,
		"returns": `
function f(a) {
  for (var i = 0; i < a.length; i++) { if (a[i] > 0) { return i; } }
  return -1;
}`,
	}
	for name, src := range cases {
		res, err := ForEach(src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rewritten() != 0 {
			t.Errorf("%s: loop rewritten despite control flow; outcomes %+v", name, res.Outcomes)
		}
		found := false
		for _, o := range res.Outcomes {
			if o.Reason != "" {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no rejection reason reported", name)
		}
	}
}

func TestForEachRejectsNonCanonicalHeaders(t *testing.T) {
	srcs := []string{
		`var a = [1]; for (var i = 1; i < a.length; i++) {}`,      // starts at 1
		`var a = [1]; for (var i = 0; i <= a.length; i++) {}`,     // <=
		`var a = [1]; for (var i = 0; i < a.length; i += 2) {}`,   // stride 2
		`var a = [1]; for (var i = 0; i < 10; i++) {}`,            // not .length
		`var a = [1]; for (var i = a.length - 1; i >= 0; i--) {}`, // reverse
	}
	for _, src := range srcs {
		res, err := ForEach(src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rewritten() != 0 {
			t.Errorf("rewrote non-canonical loop: %s\n%s", src, res.Source)
		}
	}
}

func TestForEachRejectsArrayMutation(t *testing.T) {
	src := `
var a = [1, 2];
for (var i = 0; i < a.length; i++) { a.push(a[i]); }
`
	res, err := ForEach(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewritten() != 0 {
		t.Error("rewrote a loop that grows its array")
	}
}

func TestForEachIncrementForms(t *testing.T) {
	for _, post := range []string{"i++", "++i", "i += 1", "i = i + 1"} {
		src := `
var a = [5, 6];
var s = 0;
for (var i = 0; i < a.length; ` + post + `) { s += a[i]; }
`
		res, err := ForEach(src)
		if err != nil {
			t.Fatal(err)
		}
		if res.Rewritten() != 1 {
			t.Errorf("post %q not recognized", post)
			continue
		}
		if got := runGlobal(t, res.Source, "s"); got != "11" {
			t.Errorf("post %q: s = %s", post, got)
		}
	}
}

func TestForEachFreshParamName(t *testing.T) {
	src := `
var a = [1];
var elem = "taken";
for (var i = 0; i < a.length; i++) { var x = a[i] + elem.length; }
`
	res, err := ForEach(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewritten() != 1 {
		t.Fatalf("outcomes: %+v", res.Outcomes)
	}
	if !strings.Contains(res.Source, "function(elem2, i)") &&
		!strings.Contains(res.Source, "function (elem2, i)") {
		t.Errorf("param not renamed:\n%s", res.Source)
	}
}

// TestRefactoringRemovesScopingWarnings ties §5.3 to §3.3: refactoring the
// N-body update loop to forEach removes the function-scoping dependence
// warnings, exactly as the paper describes for its Fig. 6 example.
func TestRefactoringRemovesScopingWarnings(t *testing.T) {
	src := `
var bodies = [];
function Particle() { this.x = 0; this.vX = 0; this.m = 1; }
for (var s = 0; s < 8; s++) { bodies.push(new Particle()); }
var dT = 0.01;
function step() {
  for (var i = 0; i < bodies.length; i++) {
    var p = bodies[i];
    p.vX += 0.001 / p.m * dT;
    p.x += p.vX * dT;
  }
}
var steps = 0;
while (steps < 4) { step(); steps++; }
`
	// Count p warnings with an iteration-level dependence at a for loop:
	// the function-scoping artifacts the refactoring should remove. (The
	// while-level flow dependences on p.x/p.vX are real — positions carry
	// across simulation steps — and must survive in both variants.)
	countPWarnings := func(source string) int {
		prog := parser.MustParse(source)
		in := interp.New()
		dep := core.NewDepAnalyzer(ast.NoLoop)
		in.SetHooks(dep)
		if err := in.Run(prog); err != nil {
			t.Fatalf("run: %v\n%s", err, source)
		}
		forLoop := func(id ast.LoopID) bool {
			idx := int(id) - 1
			return idx >= 0 && idx < len(prog.Loops) && prog.Loops[idx].Kind == "for"
		}
		n := 0
		for _, w := range dep.Warnings() {
			if w.Name != "p" && !strings.HasPrefix(w.Name, "p.") {
				continue
			}
			for _, lvl := range w.Char {
				if forLoop(lvl.Loop) && !lvl.IterationOK {
					n++
					break
				}
			}
		}
		return n
	}

	before := countPWarnings(src)
	if before == 0 {
		t.Fatal("original loop produced no p warnings — test is vacuous")
	}

	res, err := ForEach(src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rewritten() == 0 {
		t.Fatalf("update loop not rewritten; outcomes: %+v", res.Outcomes)
	}
	after := countPWarnings(res.Source)
	if after != 0 {
		t.Errorf("p warnings after refactoring = %d, want 0 (§3.3's forEach variant)\n%s", after, res.Source)
	}
}

func TestOutcomesCarryLabels(t *testing.T) {
	src := `
var a = [1];
for (var i = 0; i < a.length; i++) {}
while (true) { break; }
`
	res, err := ForEach(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) == 0 || !strings.Contains(res.Outcomes[0].Label, "for(line") {
		t.Errorf("outcomes: %+v", res.Outcomes)
	}
}
