// Package refactor implements the loop-to-functional refactoring the
// paper's §5.3 calls for: "Refactoring tools that can transform imperative
// iteration into functional style could make these loops amenable to
// parallelism via libraries with parallel operators such as RiverTrail"
// (citing Gyori et al., FSE'13).
//
// ForEach rewrites canonical index loops
//
//	for (var i = 0; i < arr.length; i++) { ... arr[i] ... }
//
// into
//
//	arr.forEach(function (elem, i) { ... elem ... });
//
// when the transformation is behaviour-preserving. The payoff is exactly
// the paper's §3.3 forEach observation: variables declared in the body
// become per-iteration, so JS-CERES's spurious function-scoping warnings
// disappear and the loop becomes a parallel-operator candidate.
package refactor

import (
	"fmt"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
	"repro/internal/js/printer"
)

// Outcome describes one loop's refactoring attempt.
type Outcome struct {
	Loop      ast.LoopID
	Label     string
	Rewritten bool
	// Reason explains why the loop was left alone.
	Reason string
}

// Result is the output of ForEach.
type Result struct {
	Source   string
	Outcomes []Outcome
}

// Rewritten counts successfully transformed loops.
func (r *Result) Rewritten() int {
	n := 0
	for _, o := range r.Outcomes {
		if o.Rewritten {
			n++
		}
	}
	return n
}

// ForEach parses src, rewrites every eligible canonical index loop into a
// forEach call, and prints the program back.
func ForEach(src string) (*Result, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("refactor: %w", err)
	}
	res := &Result{}
	for i := range prog.Body {
		prog.Body[i] = rewriteStmt(prog.Body[i], prog, res)
	}
	res.Source = printer.Print(prog)
	return res, nil
}

func rewriteStmt(s ast.Stmt, prog *ast.Program, res *Result) ast.Stmt {
	switch x := s.(type) {
	case *ast.BlockStmt:
		for i := range x.Body {
			x.Body[i] = rewriteStmt(x.Body[i], prog, res)
		}
	case *ast.IfStmt:
		x.Cons = rewriteStmt(x.Cons, prog, res)
		if x.Alt != nil {
			x.Alt = rewriteStmt(x.Alt, prog, res)
		}
	case *ast.FuncDecl:
		for i := range x.Fn.Body.Body {
			x.Fn.Body.Body[i] = rewriteStmt(x.Fn.Body.Body[i], prog, res)
		}
	case *ast.WhileStmt:
		x.Body = rewriteStmt(x.Body, prog, res)
	case *ast.DoWhileStmt:
		x.Body = rewriteStmt(x.Body, prog, res)
	case *ast.ForInStmt:
		x.Body = rewriteStmt(x.Body, prog, res)
	case *ast.TryStmt:
		rewriteStmt(x.Body, prog, res)
		if x.Catch != nil {
			rewriteStmt(x.Catch, prog, res)
		}
		if x.Finally != nil {
			rewriteStmt(x.Finally, prog, res)
		}
	case *ast.SwitchStmt:
		for i := range x.Cases {
			for j := range x.Cases[i].Body {
				x.Cases[i].Body[j] = rewriteStmt(x.Cases[i].Body[j], prog, res)
			}
		}
	case *ast.ForStmt:
		x.Body = rewriteStmt(x.Body, prog, res)
		out := Outcome{Loop: x.Loop, Label: label(prog, x.Loop)}
		if repl, reason := tryRewrite(x); repl != nil {
			out.Rewritten = true
			res.Outcomes = append(res.Outcomes, out)
			return repl
		} else {
			out.Reason = reason
		}
		res.Outcomes = append(res.Outcomes, out)
	}
	return s
}

func label(prog *ast.Program, id ast.LoopID) string {
	if idx := int(id) - 1; idx >= 0 && idx < len(prog.Loops) {
		return prog.Loops[idx].Label()
	}
	return "loop(?)"
}

// tryRewrite returns the forEach replacement or (nil, reason).
func tryRewrite(f *ast.ForStmt) (ast.Stmt, string) {
	idx, arr, ok := canonicalHeader(f)
	if !ok {
		return nil, "header is not the canonical `for (var i = 0; i < a.length; i++)` shape"
	}
	if r := bodyBlockers(f.Body, idx, arr); r != "" {
		return nil, r
	}

	elem := freshName(f.Body, "elem")
	body, ok := substituteReads(f.Body, arr, idx, elem)
	if !ok {
		return nil, "array is aliased or written in a way substitution cannot preserve"
	}
	blk, isBlk := body.(*ast.BlockStmt)
	if !isBlk {
		blk = &ast.BlockStmt{Body: []ast.Stmt{body}}
	}

	fn := &ast.FuncLit{
		Params: []string{elem, idx},
		Body:   blk,
	}
	collectVarNames(blk, fn)
	return &ast.ExprStmt{X: &ast.CallExpr{
		Fn:   &ast.MemberExpr{X: &ast.Ident{Name: arr}, Name: "forEach"},
		Args: []ast.Expr{fn},
	}}, ""
}

// canonicalHeader matches `var i = 0; i < a.length; i++` (also `i = 0` and
// `i += 1` / `i = i + 1` forms) and returns (indexVar, arrayVar).
func canonicalHeader(f *ast.ForStmt) (idx, arr string, ok bool) {
	// init
	switch init := f.Init.(type) {
	case *ast.VarDecl:
		if len(init.Names) != 1 || init.Inits[0] == nil {
			return "", "", false
		}
		n, isNum := init.Inits[0].(*ast.NumberLit)
		if !isNum || n.Value != 0 {
			return "", "", false
		}
		idx = init.Names[0]
	case *ast.ExprStmt:
		as, isAssign := init.X.(*ast.AssignExpr)
		if !isAssign {
			return "", "", false
		}
		id, isID := as.L.(*ast.Ident)
		n, isNum := as.R.(*ast.NumberLit)
		if !isID || !isNum || n.Value != 0 {
			return "", "", false
		}
		idx = id.Name
	default:
		return "", "", false
	}
	// cond: idx < arr.length
	cmp, isBin := f.Cond.(*ast.BinaryExpr)
	if !isBin || cmp.Op.String() != "<" {
		return "", "", false
	}
	l, isID := cmp.L.(*ast.Ident)
	mem, isMem := cmp.R.(*ast.MemberExpr)
	if !isID || l.Name != idx || !isMem || mem.Name != "length" {
		return "", "", false
	}
	base, isBase := mem.X.(*ast.Ident)
	if !isBase {
		return "", "", false
	}
	arr = base.Name
	// post: idx++ / ++idx / idx += 1 / idx = idx + 1
	if !isIncrementOf(f.Post, idx) {
		return "", "", false
	}
	return idx, arr, true
}

func isIncrementOf(e ast.Expr, idx string) bool {
	switch p := e.(type) {
	case *ast.UpdateExpr:
		id, ok := p.X.(*ast.Ident)
		return ok && id.Name == idx && p.Op.String() == "++"
	case *ast.AssignExpr:
		id, ok := p.L.(*ast.Ident)
		if !ok || id.Name != idx {
			return false
		}
		switch p.Op.String() {
		case "+=":
			n, ok := p.R.(*ast.NumberLit)
			return ok && n.Value == 1
		case "=":
			add, ok := p.R.(*ast.BinaryExpr)
			if !ok || add.Op.String() != "+" {
				return false
			}
			li, lok := add.L.(*ast.Ident)
			n, nok := add.R.(*ast.NumberLit)
			return lok && nok && li.Name == idx && n.Value == 1
		}
	}
	return false
}

// bodyBlockers rejects bodies whose semantics a forEach cannot express.
func bodyBlockers(body ast.Stmt, idx, arr string) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.BreakStmt:
			reason = "body contains break"
		case *ast.ContinueStmt:
			// continue maps to early return in the callback — but only at
			// the loop's own level; nested loops keep theirs. Conservative:
			// reject.
			reason = "body contains continue"
		case *ast.ReturnStmt:
			reason = "body returns from the enclosing function"
		case *ast.FuncLit:
			return false // nested function bodies have their own control flow
		case *ast.AssignExpr:
			if id, ok := x.L.(*ast.Ident); ok && (id.Name == idx || id.Name == arr) {
				reason = "body writes the index or array variable"
			}
		case *ast.UpdateExpr:
			if id, ok := x.X.(*ast.Ident); ok && (id.Name == idx || id.Name == arr) {
				reason = "body writes the index or array variable"
			}
		case *ast.CallExpr:
			// mutating the array's length mid-iteration changes semantics
			if mem, ok := x.Fn.(*ast.MemberExpr); ok {
				if base, ok2 := mem.X.(*ast.Ident); ok2 && base.Name == arr {
					switch mem.Name {
					case "push", "pop", "shift", "unshift", "splice":
						reason = "body mutates the array's length (" + mem.Name + ")"
					}
				}
			}
		}
		return true
	})
	return reason
}

// substituteReads replaces read occurrences of arr[idx] with the element
// parameter; writes keep the arr[idx] form (assigning to the callback
// parameter would not write through).
func substituteReads(body ast.Stmt, arr, idx, elem string) (ast.Stmt, bool) {
	ok := true
	var subExpr func(e ast.Expr, writeTarget bool) ast.Expr
	var subStmt func(s ast.Stmt) ast.Stmt

	isArrIdx := func(e ast.Expr) bool {
		ix, isIx := e.(*ast.IndexExpr)
		if !isIx {
			return false
		}
		base, okB := ix.X.(*ast.Ident)
		i, okI := ix.Index.(*ast.Ident)
		return okB && okI && base.Name == arr && i.Name == idx
	}

	subExpr = func(e ast.Expr, writeTarget bool) ast.Expr {
		if e == nil {
			return nil
		}
		if isArrIdx(e) && !writeTarget {
			return &ast.Ident{TokPos: e.Pos(), Name: elem}
		}
		switch x := e.(type) {
		case *ast.AssignExpr:
			x.L = subExpr(x.L, true)
			x.R = subExpr(x.R, false)
		case *ast.UpdateExpr:
			x.X = subExpr(x.X, true)
		case *ast.BinaryExpr:
			x.L = subExpr(x.L, false)
			x.R = subExpr(x.R, false)
		case *ast.UnaryExpr:
			x.X = subExpr(x.X, false)
		case *ast.CondExpr:
			x.Cond = subExpr(x.Cond, false)
			x.Cons = subExpr(x.Cons, false)
			x.Alt = subExpr(x.Alt, false)
		case *ast.CallExpr:
			x.Fn = subExpr(x.Fn, false)
			for i := range x.Args {
				x.Args[i] = subExpr(x.Args[i], false)
			}
		case *ast.NewExpr:
			x.Fn = subExpr(x.Fn, false)
			for i := range x.Args {
				x.Args[i] = subExpr(x.Args[i], false)
			}
		case *ast.MemberExpr:
			x.X = subExpr(x.X, writeTarget)
		case *ast.IndexExpr:
			x.X = subExpr(x.X, false)
			x.Index = subExpr(x.Index, false)
		case *ast.SeqExpr:
			for i := range x.Exprs {
				x.Exprs[i] = subExpr(x.Exprs[i], false)
			}
		case *ast.ArrayLit:
			for i := range x.Elems {
				x.Elems[i] = subExpr(x.Elems[i], false)
			}
		case *ast.ObjectLit:
			for i := range x.Values {
				x.Values[i] = subExpr(x.Values[i], false)
			}
		case *ast.FuncLit:
			// closures capturing arr/idx keep their references untouched
			return x
		}
		return e
	}

	subStmt = func(s ast.Stmt) ast.Stmt {
		switch x := s.(type) {
		case *ast.BlockStmt:
			for i := range x.Body {
				x.Body[i] = subStmt(x.Body[i])
			}
		case *ast.ExprStmt:
			x.X = subExpr(x.X, false)
		case *ast.VarDecl:
			for i := range x.Inits {
				if x.Inits[i] != nil {
					x.Inits[i] = subExpr(x.Inits[i], false)
				}
			}
		case *ast.IfStmt:
			x.Cond = subExpr(x.Cond, false)
			x.Cons = subStmt(x.Cons)
			if x.Alt != nil {
				x.Alt = subStmt(x.Alt)
			}
		case *ast.ForStmt:
			if x.Init != nil {
				x.Init = subStmt(x.Init)
			}
			if x.Cond != nil {
				x.Cond = subExpr(x.Cond, false)
			}
			if x.Post != nil {
				x.Post = subExpr(x.Post, false)
			}
			x.Body = subStmt(x.Body)
		case *ast.WhileStmt:
			x.Cond = subExpr(x.Cond, false)
			x.Body = subStmt(x.Body)
		case *ast.DoWhileStmt:
			x.Body = subStmt(x.Body)
			x.Cond = subExpr(x.Cond, false)
		case *ast.ForInStmt:
			x.Obj = subExpr(x.Obj, false)
			x.Body = subStmt(x.Body)
		case *ast.ThrowStmt:
			x.X = subExpr(x.X, false)
		case *ast.SwitchStmt:
			x.Disc = subExpr(x.Disc, false)
			for i := range x.Cases {
				if x.Cases[i].Test != nil {
					x.Cases[i].Test = subExpr(x.Cases[i].Test, false)
				}
				for j := range x.Cases[i].Body {
					x.Cases[i].Body[j] = subStmt(x.Cases[i].Body[j])
				}
			}
		}
		return s
	}

	return subStmt(body), ok
}

// freshName picks a callback parameter name not used in the body.
func freshName(body ast.Stmt, base string) string {
	used := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			used[id.Name] = true
		}
		if vd, ok := n.(*ast.VarDecl); ok {
			for _, nm := range vd.Names {
				used[nm] = true
			}
		}
		return true
	})
	if !used[base] {
		return base
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s%d", base, i)
		if !used[cand] {
			return cand
		}
	}
}

// collectVarNames fills the FuncLit's hoisting metadata so the interpreter
// treats body vars as locals of the new callback.
func collectVarNames(blk *ast.BlockStmt, fn *ast.FuncLit) {
	seen := map[string]bool{}
	ast.Inspect(blk, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if x != fn {
				return false
			}
		case *ast.VarDecl:
			for _, nm := range x.Names {
				if !seen[nm] {
					seen[nm] = true
					fn.VarNames = append(fn.VarNames, nm)
				}
			}
		case *ast.ForInStmt:
			if x.Declare && !seen[x.Name] {
				seen[x.Name] = true
				fn.VarNames = append(fn.VarNames, x.Name)
			}
		}
		return true
	})
}
