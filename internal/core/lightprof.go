package core

import (
	"repro/internal/js/ast"
	"repro/internal/js/interp"
)

// LightProfiler implements the lightweight profiling mode of §3.1: it
// measures only two scalars, the total time from the start of the
// application and the total runtime spent in all loops, using an
// open-loop counter. The paper reports this mode has no discernible
// overhead; here it is two integer fields.
type LightProfiler struct {
	interp.NopHooks
	clock interface{ Now() int64 }

	openLoops int
	loopStart int64
	inLoops   int64
	started   int64
}

// NewLightProfiler returns a profiler reading time from the interpreter's
// virtual clock.
func NewLightProfiler(in *interp.Interp) *LightProfiler {
	return &LightProfiler{clock: in, started: in.Now()}
}

// LoopEnter implements interp.Hooks: 0→1 open loops records a timestamp.
func (p *LightProfiler) LoopEnter(ast.LoopID) {
	if p.openLoops == 0 {
		p.loopStart = p.clock.Now()
	}
	p.openLoops++
}

// LoopExit implements interp.Hooks: 1→0 open loops accumulates the delta.
func (p *LightProfiler) LoopExit(ast.LoopID) {
	p.openLoops--
	if p.openLoops == 0 {
		p.inLoops += p.clock.Now() - p.loopStart
	}
	if p.openLoops < 0 {
		p.openLoops = 0
	}
}

// InLoopTime returns the total virtual nanoseconds spent inside loops.
func (p *LightProfiler) InLoopTime() int64 {
	t := p.inLoops
	if p.openLoops > 0 { // account loops still open at read time
		t += p.clock.Now() - p.loopStart
	}
	return t
}

// TotalTime returns virtual nanoseconds since the profiler was attached.
func (p *LightProfiler) TotalTime() int64 { return p.clock.Now() - p.started }
