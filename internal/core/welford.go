// Package core implements JS-CERES, the profiling and runtime dependence
// analysis tool of Radoi et al., "Are web applications ready for
// parallelism?" (PPoPP 2015).
//
// The tool has three staged instrumentation modes (§3 of the paper), each
// implemented as an interp.Hooks analyzer so overhead stays proportional
// to what the mode needs:
//
//   - LightProfiler (§3.1): total time vs. time spent in loops, via an
//     open-loop counter.
//   - LoopProfiler (§3.2): per-syntactic-loop instances, running time and
//     trip counts, with mean/variance by Welford's online algorithm.
//   - DepAnalyzer (§3.3): runtime dependence analysis over a loop
//     characterization stack with object creation stamps.
//
// On top of the raw modes, Classify assembles loop nests and derives the
// Table 3 columns (control-flow divergence, DOM access, dependence
// breaking difficulty, parallelization difficulty).
package core

import "math"

// Welford maintains running mean and variance using Welford's online
// algorithm (the paper cites Welford 1962 for its loop statistics).
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the statistics.
func (w *Welford) Add(x float64) {
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 with no observations).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// SampleVariance returns the sample (n-1) variance.
func (w *Welford) SampleVariance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Sum returns the total of all observations.
func (w *Welford) Sum() float64 { return w.mean * float64(w.n) }

// Merge combines another Welford accumulator into this one (parallel
// variance combination), used when aggregating per-instance statistics.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.n), float64(o.n)
	delta := o.mean - w.mean
	total := n1 + n2
	w.mean += delta * n2 / total
	w.m2 += o.m2 + delta*delta*n1*n2/total
	w.n += o.n
}
