package core
