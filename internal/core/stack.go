package core

import "repro/internal/js/ast"

// LoopStack is the live characterization stack of §3.3: one Triple per
// currently-open loop, outermost first. Loop instances are numbered from a
// global per-loop counter, incremented on every entry, exactly as the
// paper describes.
type LoopStack struct {
	stack     []Triple
	instances map[ast.LoopID]int64

	// open tracks how many frames of each loop are on the stack so the
	// recursion bail-out (§3.3) can detect a loop re-entered before it
	// exits — the signature of recursion growing the stack indefinitely.
	open map[ast.LoopID]int

	// Recursive collects loops that were re-entered recursively; analysis
	// results for their nests must be discarded.
	Recursive map[ast.LoopID]bool
}

// NewLoopStack returns an empty stack.
func NewLoopStack() *LoopStack {
	return &LoopStack{
		instances: make(map[ast.LoopID]int64),
		open:      make(map[ast.LoopID]int),
		Recursive: make(map[ast.LoopID]bool),
	}
}

// Enter pushes a new instance of loop id. It reports whether the push was
// recursive (the loop was already open).
func (ls *LoopStack) Enter(id ast.LoopID) (recursive bool) {
	if ls.open[id] > 0 {
		recursive = true
		ls.Recursive[id] = true
	}
	ls.instances[id]++
	ls.stack = append(ls.stack, Triple{Loop: id, Instance: ls.instances[id], Iteration: 0})
	ls.open[id]++
	return recursive
}

// Iterate increments the iteration counter of the innermost open instance
// of loop id (in well-nested programs that instance is the top of stack).
func (ls *LoopStack) Iterate(id ast.LoopID) {
	for i := len(ls.stack) - 1; i >= 0; i-- {
		if ls.stack[i].Loop == id {
			ls.stack[i].Iteration++
			return
		}
	}
}

// Exit pops the innermost instance of loop id.
func (ls *LoopStack) Exit(id ast.LoopID) {
	for i := len(ls.stack) - 1; i >= 0; i-- {
		if ls.stack[i].Loop == id {
			ls.stack = append(ls.stack[:i], ls.stack[i+1:]...)
			if ls.open[id] > 0 {
				ls.open[id]--
			}
			return
		}
	}
}

// Depth returns the number of open loops.
func (ls *LoopStack) Depth() int { return len(ls.stack) }

// Contains reports whether loop id is currently open.
func (ls *LoopStack) Contains(id ast.LoopID) bool { return ls.open[id] > 0 }

// Top returns the innermost open triple and whether one exists.
func (ls *LoopStack) Top() (Triple, bool) {
	if len(ls.stack) == 0 {
		return Triple{}, false
	}
	return ls.stack[len(ls.stack)-1], true
}

// Root returns the outermost open loop id, or ast.NoLoop.
func (ls *LoopStack) Root() ast.LoopID {
	if len(ls.stack) == 0 {
		return ast.NoLoop
	}
	return ls.stack[0].Loop
}

// Snapshot returns an immutable copy of the stack for use as a stamp.
// Snapshots are what the paper stores in its object proxies.
func (ls *LoopStack) Snapshot() Stamp {
	if len(ls.stack) == 0 {
		return nil
	}
	out := make(Stamp, len(ls.stack))
	copy(out, ls.stack)
	return out
}

// Instances returns how many times loop id has been entered.
func (ls *LoopStack) Instances(id ast.LoopID) int64 { return ls.instances[id] }
