package core

import (
	"strings"

	"repro/internal/js/ast"
)

// Triple is one level of the loop characterization stack: which syntactic
// loop, which dynamic instance of it, and which iteration is currently
// running (§3.3 of the paper).
type Triple struct {
	Loop      ast.LoopID
	Instance  int64
	Iteration int64
}

// Stamp is an immutable snapshot of the characterization stack, taken at
// object-instantiation or binding-creation time (the paper stores it in an
// ES Proxy wrapper; here it lives in the Aux slot of bindings/objects).
type Stamp []Triple

// LevelChar characterizes one loop level of an access: whether the value
// is private per instance and per iteration of that loop. The paper prints
// these as "ok"/"dependence" pairs.
type LevelChar struct {
	Loop        ast.LoopID
	InstanceOK  bool
	IterationOK bool
}

// Characterization is the per-loop-level characterization of one access,
// outermost loop first — the "→"-separated triple list of §3.3.
type Characterization []LevelChar

// Characterize diffs the creation stamp of the accessed location against
// the current stack, producing the paper's ok/dependence list:
//
//   - matching levels (same loop, same instance, same iteration) are
//     "ok ok";
//   - a level whose iteration differs is "ok dependence"; one whose
//     instance differs is "dependence dependence" ("dependence ok" is not
//     a valid characterization — if all instances share the value, all
//     iterations do too);
//   - levels missing from the stamp (the value was created before the
//     loop began, in the current enclosing iteration) are
//     "ok dependence": every iteration of this instance shares the value;
//   - once a level differs, all deeper levels are conservatively
//     "dependence dependence".
func Characterize(stamp, current Stamp) Characterization {
	out := make(Characterization, 0, len(current))
	misaligned := false
	for i, cur := range current {
		if misaligned {
			out = append(out, LevelChar{Loop: cur.Loop})
			continue
		}
		if i < len(stamp) && stamp[i].Loop == cur.Loop {
			instOK := stamp[i].Instance == cur.Instance
			iterOK := instOK && stamp[i].Iteration == cur.Iteration
			out = append(out, LevelChar{Loop: cur.Loop, InstanceOK: instOK, IterationOK: iterOK})
			if !iterOK {
				misaligned = true
			}
			continue
		}
		if i >= len(stamp) {
			// Created before this loop started, within the current
			// iteration of every enclosing loop.
			out = append(out, LevelChar{Loop: cur.Loop, InstanceOK: true, IterationOK: false})
			misaligned = true
			continue
		}
		// Structural mismatch (different loop at this level).
		out = append(out, LevelChar{Loop: cur.Loop})
		misaligned = true
	}
	return out
}

// Clean reports whether every level is "ok ok" (the access is private to
// the current iteration at every depth — not problematic).
func (c Characterization) Clean() bool {
	for _, l := range c {
		if !l.InstanceOK || !l.IterationOK {
			return false
		}
	}
	return true
}

// DependsAt reports whether the characterization shows an inter-iteration
// or inter-instance dependence at the given loop.
func (c Characterization) DependsAt(loop ast.LoopID) bool {
	for _, l := range c {
		if l.Loop == loop {
			return !l.InstanceOK || !l.IterationOK
		}
	}
	return false
}

// IterationDependsAt reports an iteration-level dependence at the given
// loop with instance-level privacy (the parallelizability question for
// that loop).
func (c Characterization) IterationDependsAt(loop ast.LoopID) bool {
	for _, l := range c {
		if l.Loop == loop {
			return l.InstanceOK && !l.IterationOK
		}
	}
	return false
}

// hasIterationDep reports whether any level is "ok dependence" — a true
// inter-iteration dependence with instance-level privacy.
func (c Characterization) hasIterationDep() bool {
	for _, l := range c {
		if l.InstanceOK && !l.IterationOK {
			return true
		}
	}
	return false
}

// Key returns a canonical string for deduplicating identical
// characterizations, e.g. "1:oo/4:od".
func (c Characterization) Key() string {
	var sb strings.Builder
	for i, l := range c {
		if i > 0 {
			sb.WriteByte('/')
		}
		writeIntSB(&sb, int64(l.Loop))
		sb.WriteByte(':')
		sb.WriteByte(flagChar(l.InstanceOK))
		sb.WriteByte(flagChar(l.IterationOK))
	}
	return sb.String()
}

func flagChar(ok bool) byte {
	if ok {
		return 'o'
	}
	return 'd'
}

func writeIntSB(sb *strings.Builder, n int64) {
	if n < 0 {
		sb.WriteByte('-')
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	sb.Write(buf[i:])
}

// Format renders the characterization in the paper's notation, e.g.
// "while(line 24) ok ok → for(line 6) ok dependence". loops maps LoopID to
// its LoopInfo (pass prog.Loops).
func (c Characterization) Format(loops []ast.LoopInfo) string {
	var sb strings.Builder
	for i, l := range c {
		if i > 0 {
			sb.WriteString(" → ")
		}
		sb.WriteString(loopLabel(loops, l.Loop))
		sb.WriteByte(' ')
		sb.WriteString(flagWord(l.InstanceOK))
		sb.WriteByte(' ')
		sb.WriteString(flagWord(l.IterationOK))
	}
	return sb.String()
}

func flagWord(ok bool) string {
	if ok {
		return "ok"
	}
	return "dependence"
}

func loopLabel(loops []ast.LoopInfo, id ast.LoopID) string {
	idx := int(id) - 1
	if idx >= 0 && idx < len(loops) {
		return loops[idx].Label()
	}
	return "loop(?)"
}
