package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/js/ast"
)

// ---- Welford ----

func TestWelfordAgainstTwoPass(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.Mean() != 5 {
		t.Errorf("mean = %v", w.Mean())
	}
	if w.Variance() != 4 {
		t.Errorf("variance = %v", w.Variance())
	}
	if w.StdDev() != 2 {
		t.Errorf("stddev = %v", w.StdDev())
	}
	if w.Sum() != 40 {
		t.Errorf("sum = %v", w.Sum())
	}
}

// Property: Welford ≡ naive two-pass variance for arbitrary inputs.
func TestWelfordProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		var w Welford
		var sum float64
		for _, r := range raw {
			w.Add(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, r := range raw {
			d := float64(r) - mean
			m2 += d * d
		}
		wantVar := m2 / float64(len(raw))
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Variance()-wantVar) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: merging two Welford accumulators equals accumulating the
// concatenation.
func TestWelfordMergeProperty(t *testing.T) {
	f := func(a, b []int16) bool {
		var wa, wb, wAll Welford
		for _, x := range a {
			wa.Add(float64(x))
			wAll.Add(float64(x))
		}
		for _, x := range b {
			wb.Add(float64(x))
			wAll.Add(float64(x))
		}
		wa.Merge(wb)
		if wa.N() != wAll.N() {
			return false
		}
		if wa.N() == 0 {
			return true
		}
		return math.Abs(wa.Mean()-wAll.Mean()) < 1e-6 &&
			math.Abs(wa.Variance()-wAll.Variance()) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// ---- LoopStack ----

func TestLoopStackNesting(t *testing.T) {
	ls := NewLoopStack()
	if rec := ls.Enter(1); rec {
		t.Error("fresh loop flagged recursive")
	}
	ls.Iterate(1)
	ls.Iterate(1)
	ls.Enter(2)
	ls.Iterate(2)
	snap := ls.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("depth %d", len(snap))
	}
	if snap[0] != (Triple{Loop: 1, Instance: 1, Iteration: 2}) {
		t.Errorf("outer = %+v", snap[0])
	}
	if snap[1] != (Triple{Loop: 2, Instance: 1, Iteration: 1}) {
		t.Errorf("inner = %+v", snap[1])
	}
	ls.Exit(2)
	ls.Enter(2) // second instance
	if top, _ := ls.Top(); top.Instance != 2 {
		t.Errorf("instance = %d, want 2", top.Instance)
	}
	ls.Exit(2)
	ls.Exit(1)
	if ls.Depth() != 0 {
		t.Errorf("depth = %d after exits", ls.Depth())
	}
}

func TestLoopStackSnapshotImmutable(t *testing.T) {
	ls := NewLoopStack()
	ls.Enter(1)
	snap := ls.Snapshot()
	ls.Iterate(1)
	if snap[0].Iteration != 0 {
		t.Error("snapshot mutated by later Iterate")
	}
}

func TestLoopStackRecursionDetection(t *testing.T) {
	ls := NewLoopStack()
	ls.Enter(1)
	ls.Enter(2)
	if rec := ls.Enter(1); !rec {
		t.Error("re-entry not flagged")
	}
	if !ls.Recursive[1] {
		t.Error("recursive loop not recorded")
	}
	// exits unwind innermost instance first
	ls.Exit(1)
	if !ls.Contains(1) {
		t.Error("outer instance of 1 vanished")
	}
	ls.Exit(2)
	ls.Exit(1)
	if ls.Depth() != 0 {
		t.Error("unbalanced")
	}
}

// Property: after any sequence of balanced enter/exit pairs the stack is
// empty and instance counters equal the number of enters.
func TestLoopStackBalancedProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		ls := NewLoopStack()
		var open []ast.LoopID
		enters := map[ast.LoopID]int64{}
		for _, op := range ops {
			id := ast.LoopID(op%5 + 1)
			if op%2 == 0 || len(open) == 0 {
				ls.Enter(id)
				enters[id]++
				open = append(open, id)
			} else {
				last := open[len(open)-1]
				ls.Exit(last)
				open = open[:len(open)-1]
			}
		}
		for len(open) > 0 {
			ls.Exit(open[len(open)-1])
			open = open[:len(open)-1]
		}
		if ls.Depth() != 0 {
			return false
		}
		for id, n := range enters {
			if ls.Instances(id) != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// ---- Characterize ----

func TestCharacterizeIdentical(t *testing.T) {
	s := Stamp{{1, 2, 3}, {4, 5, 6}}
	c := Characterize(s, s)
	if !c.Clean() {
		t.Errorf("identical stamps not clean: %v", c)
	}
}

func TestCharacterizeIterationDiff(t *testing.T) {
	prev := Stamp{{1, 1, 3}}
	cur := Stamp{{1, 1, 4}}
	c := Characterize(prev, cur)
	if len(c) != 1 || !c[0].InstanceOK || c[0].IterationOK {
		t.Errorf("char = %v, want ok dependence", c)
	}
	if !c.hasIterationDep() {
		t.Error("hasIterationDep false")
	}
}

func TestCharacterizeInstanceDiffImpliesIterationDiff(t *testing.T) {
	// "dependence ok" is not a valid characterization (§3.3)
	prev := Stamp{{1, 1, 3}}
	cur := Stamp{{1, 2, 3}}
	c := Characterize(prev, cur)
	if c[0].InstanceOK || c[0].IterationOK {
		t.Errorf("char = %v, want dependence dependence", c)
	}
}

func TestCharacterizeMissingLevels(t *testing.T) {
	// created before the inner loop started, same outer iteration
	prev := Stamp{{1, 1, 3}}
	cur := Stamp{{1, 1, 3}, {2, 7, 5}}
	c := Characterize(prev, cur)
	if !c[0].InstanceOK || !c[0].IterationOK {
		t.Errorf("outer level = %+v, want ok ok", c[0])
	}
	if !c[1].InstanceOK || c[1].IterationOK {
		t.Errorf("inner level = %+v, want ok dependence", c[1])
	}
}

func TestCharacterizeMisalignedTail(t *testing.T) {
	// once a level differs, deeper levels are conservatively dependent
	prev := Stamp{{1, 1, 2}, {2, 3, 4}}
	cur := Stamp{{1, 1, 5}, {2, 9, 1}}
	c := Characterize(prev, cur)
	if c[0].InstanceOK != true || c[0].IterationOK != false {
		t.Errorf("level0 = %+v", c[0])
	}
	if c[1].InstanceOK || c[1].IterationOK {
		t.Errorf("level1 = %+v, want dependence dependence", c[1])
	}
}

func TestCharacterizeStructuralMismatch(t *testing.T) {
	prev := Stamp{{3, 1, 1}}
	cur := Stamp{{5, 1, 1}}
	c := Characterize(prev, cur)
	if c[0].InstanceOK || c[0].IterationOK {
		t.Errorf("different loops must be fully dependent: %v", c)
	}
	if c.hasIterationDep() {
		t.Error("structural mismatch is not an iteration dependence")
	}
}

// Property: Characterize(s, s) is always clean; prefix-sharing stamps are
// clean on the shared prefix.
func TestCharacterizeProperties(t *testing.T) {
	mk := func(raw []uint8) Stamp {
		s := make(Stamp, 0, len(raw)/3)
		for i := 0; i+2 < len(raw); i += 3 {
			s = append(s, Triple{
				Loop:      ast.LoopID(raw[i]%7 + 1),
				Instance:  int64(raw[i+1] % 4),
				Iteration: int64(raw[i+2] % 4),
			})
		}
		return s
	}
	selfClean := func(raw []uint8) bool {
		s := mk(raw)
		return Characterize(s, s).Clean()
	}
	if err := quick.Check(selfClean, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	prefixOK := func(raw []uint8, extra uint8) bool {
		s := mk(raw)
		cur := append(append(Stamp{}, s...), Triple{Loop: ast.LoopID(extra%7 + 10), Instance: 1, Iteration: 2})
		c := Characterize(s, cur)
		for i := range s {
			if !c[i].InstanceOK || !c[i].IterationOK {
				return false
			}
		}
		last := c[len(c)-1]
		return last.InstanceOK && !last.IterationOK
	}
	if err := quick.Check(prefixOK, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCharacterizationFormat(t *testing.T) {
	loops := []ast.LoopInfo{
		{ID: 1, Kind: "while", Line: 24},
		{ID: 2, Kind: "for", Line: 6},
	}
	c := Characterization{
		{Loop: 1, InstanceOK: true, IterationOK: true},
		{Loop: 2, InstanceOK: true, IterationOK: false},
	}
	want := "while(line 24) ok ok → for(line 6) ok dependence"
	if got := c.Format(loops); got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
	if c.Key() != "1:oo/2:od" {
		t.Errorf("Key = %q", c.Key())
	}
}

// ---- Difficulty / divergence string coverage ----

func TestScaleStrings(t *testing.T) {
	if VeryEasy.String() != "very easy" || VeryHard.String() != "very hard" {
		t.Error("difficulty strings")
	}
	if DivNone.String() != "none" || DivLittle.String() != "little" || DivYes.String() != "yes" {
		t.Error("divergence strings")
	}
	if WarnVarWrite.String() != "var-write" || WarnRecursion.String() != "recursion" {
		t.Error("warn kind strings")
	}
}

// ---- Amdahl ----

func TestAmdahlBound(t *testing.T) {
	nests := []NestReport{
		{TimeNS: 900, ParDiff: Easy},
		{TimeNS: 50, ParDiff: VeryHard},
	}
	easy := func(n *NestReport) bool { return n.ParDiff <= Easy }
	b := AmdahlBound(nests, 1000, easy)
	if math.Abs(b-10) > 1e-9 {
		t.Errorf("bound = %v, want 10 (P=0.9)", b)
	}
	b16 := AmdahlBoundCores(nests, 1000, 16, easy)
	want := 1 / (0.1 + 0.9/16)
	if math.Abs(b16-want) > 1e-9 {
		t.Errorf("16-core = %v, want %v", b16, want)
	}
	if AmdahlBound(nests, 0, easy) != 1 {
		t.Error("degenerate script time")
	}
	// P capped below 1
	all := func(*NestReport) bool { return true }
	if b := AmdahlBound(nests, 900, all); math.IsInf(b, 1) {
		t.Error("bound overflowed to +Inf")
	}
}
