package core

import (
	"sort"
	"strings"

	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/value"
)

// WarnKind enumerates the three problematic access types of §3.3 plus the
// recursion bail-out.
type WarnKind int

// Warning kinds.
const (
	// WarnVarWrite is type (a): a write to a variable declared outside the
	// context of the current loop iteration (output dependence).
	WarnVarWrite WarnKind = iota
	// WarnPropWrite is type (b): a write to a field of an object
	// initialized outside the current loop iteration (output/anti
	// dependence).
	WarnPropWrite
	// WarnFlowRead is type (c): a read of a field written in a different
	// iteration (flow dependence).
	WarnFlowRead
	// WarnRecursion flags a loop nest whose analysis was discarded because
	// recursive calls re-entered an open loop (§3.3).
	WarnRecursion
)

func (k WarnKind) String() string {
	switch k {
	case WarnVarWrite:
		return "var-write"
	case WarnPropWrite:
		return "prop-write"
	case WarnFlowRead:
		return "flow-read"
	case WarnRecursion:
		return "recursion"
	}
	return "unknown"
}

// Warning is one deduplicated problematic-access report.
type Warning struct {
	Kind  WarnKind
	Name  string // variable name or reference.path of the access
	Char  Characterization
	Count int64
}

// Format renders the warning in the paper's report style.
func (w *Warning) Format(loops []ast.LoopInfo) string {
	var sb strings.Builder
	sb.WriteString(w.Kind.String())
	sb.WriteByte(' ')
	sb.WriteString(w.Name)
	sb.WriteString(": ")
	sb.WriteString(w.Char.Format(loops))
	return sb.String()
}

// LoopDepSummary aggregates, for a single loop, the distinct locations
// with each dependence type at that loop's iteration level. It feeds the
// Table 3 "breaking dependencies" classifier.
type LoopDepSummary struct {
	// VarWrites: variable names with inter-iteration output dependences.
	VarWrites map[string]int64
	// SharedPropWrites: access paths writing state shared across
	// iterations.
	SharedPropWrites map[string]int64
	// OverlapPropWrites: the subset observed writing the *same* property
	// in two different iterations of one instance — a real output
	// dependence, as opposed to a disjoint (e.g. pixel-per-iteration)
	// pattern.
	OverlapPropWrites map[string]int64
	// FlowReads: access paths with true (read-after-write) cross-iteration
	// dependences.
	FlowReads map[string]int64
	// VarFlows: variables read after a cross-iteration write — true
	// loop-carried scalars (accumulators, convergence flags); distinct
	// from VarWrites, which also lists privatizable temporaries.
	VarFlows map[string]int64
	// CrossInstance: locations shared across loop instances.
	CrossInstance map[string]int64
	// Recursion reports the §3.3 bail-out for this loop's nest.
	Recursion bool
}

func newLoopDepSummary() *LoopDepSummary {
	return &LoopDepSummary{
		VarWrites:         make(map[string]int64),
		SharedPropWrites:  make(map[string]int64),
		OverlapPropWrites: make(map[string]int64),
		FlowReads:         make(map[string]int64),
		VarFlows:          make(map[string]int64),
		CrossInstance:     make(map[string]int64),
	}
}

// objRecord is the analyzer-side shadow of one heap object — the Go
// analogue of the paper's ES Proxy wrapper. It lives in value.Object.Aux.
type objRecord struct {
	created   Stamp
	lastWrite map[string]Stamp
}

// varRecord is the analyzer-side shadow of one binding: the creation
// stamp (function entry for hoisted vars) plus the last write, used to
// distinguish privatizable temporaries from true loop-carried variables.
type varRecord struct {
	created Stamp
	// lastWrite is the stamp of the most recent write; writeInHeader marks
	// writes from loop init/post clauses (induction updates), whose
	// subsequent reads are not loop-carried evidence.
	lastWrite     Stamp
	hasWrite      bool
	writeInHeader bool
}

// DepAnalyzer implements the dependence-analysis mode of §3.3.
type DepAnalyzer struct {
	interp.NopHooks

	stack  *LoopStack
	focus  ast.LoopID // 0 analyses every loop
	header int        // >0 while evaluating a loop init/post clause

	curStamp   Stamp // cached snapshot, invalidated on stack changes
	stampValid bool

	warnings    map[string]*Warning
	warningCap  int
	byLoop      map[ast.LoopID]*LoopDepSummary
	summaryCap  int
	varKinds    map[*interp.Binding]uint16
	varKindName map[*interp.Binding]string

	// Dropped counts warnings not recorded once the cap was hit.
	Dropped int64
}

// NewDepAnalyzer returns a dependence analyzer. focus restricts warning
// collection to accesses occurring while the given loop is open; pass
// ast.NoLoop to analyse everything.
func NewDepAnalyzer(focus ast.LoopID) *DepAnalyzer {
	return &DepAnalyzer{
		stack:       NewLoopStack(),
		focus:       focus,
		warnings:    make(map[string]*Warning),
		warningCap:  100_000,
		byLoop:      make(map[ast.LoopID]*LoopDepSummary),
		summaryCap:  4096,
		varKinds:    make(map[*interp.Binding]uint16),
		varKindName: make(map[*interp.Binding]string),
	}
}

// Stack exposes the live characterization stack (read-only use).
func (d *DepAnalyzer) Stack() *LoopStack { return d.stack }

func (d *DepAnalyzer) snapshot() Stamp {
	if !d.stampValid {
		d.curStamp = d.stack.Snapshot()
		d.stampValid = true
	}
	return d.curStamp
}

func (d *DepAnalyzer) active() bool {
	if d.stack.Depth() == 0 {
		return false
	}
	if d.focus == ast.NoLoop {
		return true
	}
	return d.stack.Contains(d.focus)
}

// LoopEnter implements interp.Hooks.
func (d *DepAnalyzer) LoopEnter(id ast.LoopID) {
	if d.stack.Enter(id) {
		// Recursion bail-out: poison every open nest.
		for _, t := range d.stack.Snapshot() {
			d.summaryFor(t.Loop).Recursion = true
		}
		d.recordWarning(WarnRecursion, loopWarnName(id), nil)
	}
	d.stampValid = false
}

// LoopIter implements interp.Hooks.
func (d *DepAnalyzer) LoopIter(id ast.LoopID) {
	d.stack.Iterate(id)
	d.stampValid = false
}

// LoopExit implements interp.Hooks.
func (d *DepAnalyzer) LoopExit(id ast.LoopID) {
	d.stack.Exit(id)
	d.stampValid = false
}

// LoopHeader implements interp.Hooks: accesses in init/post clauses are
// induction-variable updates and are exempt from warnings.
func (d *DepAnalyzer) LoopHeader(_ ast.LoopID, active bool) {
	if active {
		d.header++
	} else if d.header > 0 {
		d.header--
	}
}

// VarDeclare implements interp.Hooks: bindings are stamped at creation,
// which is function entry for hoisted vars — the function-scoping
// behaviour the paper's Fig. 6 example hinges on.
func (d *DepAnalyzer) VarDeclare(_ string, b *interp.Binding) {
	b.Aux = &varRecord{created: d.snapshot()}
}

func varRecordOf(b *interp.Binding) *varRecord {
	rec, _ := b.Aux.(*varRecord)
	if rec == nil {
		rec = &varRecord{} // binding predates analysis: empty stamp
		b.Aux = rec
	}
	return rec
}

// VarWrite implements interp.Hooks: type (a) warnings.
func (d *DepAnalyzer) VarWrite(name string, b *interp.Binding) {
	d.observeKind(name, b)
	rec := varRecordOf(b)
	cur := d.snapshot()
	if d.header == 0 && d.active() {
		char := Characterize(rec.created, cur)
		if !char.Clean() {
			d.recordWarning(WarnVarWrite, name, char)
			d.aggregate(char, name, (*LoopDepSummary).varWrites)
		}
	}
	if d.stack.Depth() > 0 || rec.hasWrite {
		rec.lastWrite = cur
		rec.hasWrite = true
		rec.writeInHeader = d.header > 0
	}
}

// VarRead implements interp.Hooks: a read of a variable written in a
// *different iteration* of an open loop is a true loop-carried flow
// dependence (accumulators, convergence flags). Reads following
// header-clause writes (induction updates) are exempt — those are
// privatizable by definition.
func (d *DepAnalyzer) VarRead(name string, b *interp.Binding) {
	if d.header > 0 || !d.active() {
		return
	}
	rec, _ := b.Aux.(*varRecord)
	if rec == nil || !rec.hasWrite || rec.writeInHeader {
		return
	}
	char := Characterize(rec.lastWrite, d.snapshot())
	if !char.hasIterationDep() {
		return
	}
	d.recordWarning(WarnFlowRead, name, char)
	d.aggregateIterOnly(char, name, (*LoopDepSummary).varFlows)
}

// ObjectNew implements interp.Hooks: objects get creation stamps, the
// analogue of the paper's proxy wrapping at each creation site.
func (d *DepAnalyzer) ObjectNew(o *value.Object) {
	o.Aux = &objRecord{created: d.snapshot()}
}

// PropWrite implements interp.Hooks: type (b) warnings plus write-pattern
// (overlap) detection.
func (d *DepAnalyzer) PropWrite(o *value.Object, key string, via *interp.Binding) {
	rec, _ := o.Aux.(*objRecord)
	if rec == nil {
		rec = &objRecord{} // object predates analysis: empty stamp
		o.Aux = rec
	}
	cur := d.snapshot()
	if d.header == 0 && d.active() {
		stamp := rec.created
		name := accessName(o, key, via)
		if via != nil {
			if vr, ok := via.Aux.(*varRecord); ok {
				stamp = vr.created
			}
		}
		char := Characterize(stamp, cur)
		if !char.Clean() {
			d.recordWarning(WarnPropWrite, name, char)
			d.aggregate(char, name, (*LoopDepSummary).sharedPropWrites)
		}
		// Overlap: same property written in a different iteration of the
		// same instance → a real output dependence at that loop.
		if prev, ok := rec.lastWrite[key]; ok {
			wchar := Characterize(prev, cur)
			for _, l := range wchar {
				if l.InstanceOK && !l.IterationOK {
					d.summaryAdd(l.Loop, name, (*LoopDepSummary).overlapPropWrites)
				}
			}
		}
	}
	if d.stack.Depth() > 0 {
		if rec.lastWrite == nil {
			rec.lastWrite = make(map[string]Stamp, 8)
		}
		rec.lastWrite[key] = cur
	}
}

// PropRead implements interp.Hooks: type (c) flow-dependence warnings.
// A read is a flow dependence only when the field was written in a
// *different iteration* of a loop that is still open — i.e. some level of
// the characterization is "ok dependence". A value written in a sibling
// loop earlier in the same iteration is not loop-carried and is exempt.
func (d *DepAnalyzer) PropRead(o *value.Object, key string, via *interp.Binding) {
	if d.header > 0 || !d.active() {
		return
	}
	rec, _ := o.Aux.(*objRecord)
	if rec == nil || rec.lastWrite == nil {
		return
	}
	prev, ok := rec.lastWrite[key]
	if !ok {
		return
	}
	char := Characterize(prev, d.snapshot())
	if !char.hasIterationDep() {
		return
	}
	name := accessName(o, key, via)
	d.recordWarning(WarnFlowRead, name, char)
	d.aggregateIterOnly(char, name, (*LoopDepSummary).flowReads)
}

// observeKind tracks per-binding dynamic types for the §4.2 polymorphism
// check. Transitions through undefined/null do not count (the paper's
// definition).
func (d *DepAnalyzer) observeKind(name string, b *interp.Binding) {
	var bit uint16
	switch b.V.Kind() {
	case value.KindBool:
		bit = 1
	case value.KindNumber:
		bit = 2
	case value.KindString:
		bit = 4
	case value.KindObject:
		if b.V.IsCallable() {
			bit = 8
		} else {
			bit = 16
		}
	default:
		return // undefined/null transitions are exempt
	}
	if len(d.varKinds) > 100_000 {
		return
	}
	d.varKinds[b] |= bit
	if _, ok := d.varKindName[b]; !ok {
		d.varKindName[b] = name
	}
}

// PolymorphicVars returns the names of variables observed holding values
// of more than one (non-nullish) dynamic type.
func (d *DepAnalyzer) PolymorphicVars() []string {
	seen := map[string]bool{}
	var out []string
	for b, mask := range d.varKinds {
		if popcount16(mask) >= 2 && !seen[d.varKindName[b]] {
			seen[d.varKindName[b]] = true
			out = append(out, d.varKindName[b])
		}
	}
	sort.Strings(out)
	return out
}

func popcount16(x uint16) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func accessName(o *value.Object, key string, via *interp.Binding) string {
	base := "<" + o.Class + ">"
	if via != nil {
		base = via.Name
	}
	if isNumericKey(key) {
		return base + "[elem]"
	}
	return base + "." + key
}

func loopWarnName(id ast.LoopID) string {
	var sb strings.Builder
	sb.WriteString("loop#")
	writeIntSB(&sb, int64(id))
	return sb.String()
}

func isNumericKey(key string) bool {
	if key == "" {
		return false
	}
	for i := 0; i < len(key); i++ {
		if key[i] < '0' || key[i] > '9' {
			return false
		}
	}
	return true
}

func (d *DepAnalyzer) recordWarning(kind WarnKind, name string, char Characterization) {
	key := kind.String() + "|" + name + "|" + char.Key()
	if w, ok := d.warnings[key]; ok {
		w.Count++
		return
	}
	if len(d.warnings) >= d.warningCap {
		d.Dropped++
		return
	}
	d.warnings[key] = &Warning{Kind: kind, Name: name, Char: char, Count: 1}
}

// summary field selectors (method values used as map pickers)

func (s *LoopDepSummary) varWrites() map[string]int64         { return s.VarWrites }
func (s *LoopDepSummary) sharedPropWrites() map[string]int64  { return s.SharedPropWrites }
func (s *LoopDepSummary) overlapPropWrites() map[string]int64 { return s.OverlapPropWrites }
func (s *LoopDepSummary) flowReads() map[string]int64         { return s.FlowReads }
func (s *LoopDepSummary) varFlows() map[string]int64          { return s.VarFlows }

func (d *DepAnalyzer) summaryFor(id ast.LoopID) *LoopDepSummary {
	s, ok := d.byLoop[id]
	if !ok {
		s = newLoopDepSummary()
		d.byLoop[id] = s
	}
	return s
}

func (d *DepAnalyzer) summaryAdd(id ast.LoopID, name string, pick func(*LoopDepSummary) map[string]int64) {
	s := d.summaryFor(id)
	m := pick(s)
	if _, ok := m[name]; !ok && len(m) >= d.summaryCap {
		d.Dropped++
		return
	}
	m[name]++
}

// aggregate distributes a characterization's per-level dependences into
// the per-loop summaries: iteration-level dependences go to the main maps,
// instance-level ones to CrossInstance.
func (d *DepAnalyzer) aggregate(char Characterization, name string, pick func(*LoopDepSummary) map[string]int64) {
	for _, l := range char {
		if l.InstanceOK && !l.IterationOK {
			d.summaryAdd(l.Loop, name, pick)
		} else if !l.InstanceOK {
			s := d.summaryFor(l.Loop)
			if _, ok := s.CrossInstance[name]; !ok && len(s.CrossInstance) >= d.summaryCap {
				d.Dropped++
				continue
			}
			s.CrossInstance[name]++
			d.summaryAdd(l.Loop, name, pick)
		}
	}
}

// aggregateIterOnly records only the levels with a genuine inter-iteration
// dependence (flow reads: conservative dd tails are not loop-carried
// evidence at those deeper loops).
func (d *DepAnalyzer) aggregateIterOnly(char Characterization, name string, pick func(*LoopDepSummary) map[string]int64) {
	for _, l := range char {
		if l.InstanceOK && !l.IterationOK {
			d.summaryAdd(l.Loop, name, pick)
		}
	}
}

// Summary returns the dependence summary for one loop (may be nil).
func (d *DepAnalyzer) Summary(id ast.LoopID) *LoopDepSummary { return d.byLoop[id] }

// Warnings returns all deduplicated warnings sorted by kind, then name.
func (d *DepAnalyzer) Warnings() []*Warning {
	out := make([]*Warning, 0, len(d.warnings))
	for _, w := range d.warnings {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Char.Key() < out[j].Char.Key()
	})
	return out
}

// WarningsFor returns warnings whose characterization mentions the loop.
func (d *DepAnalyzer) WarningsFor(id ast.LoopID) []*Warning {
	var out []*Warning
	for _, w := range d.Warnings() {
		for _, l := range w.Char {
			if l.Loop == id {
				out = append(out, w)
				break
			}
		}
	}
	return out
}
