package core

import (
	"strings"
	"testing"

	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/parser"
)

func detectPairs(t *testing.T, src string) *PipePairDetector {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	in := interp.New()
	d := NewPipePairDetector()
	in.SetHooks(d)
	if err := in.Run(prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	return d
}

func pairSet(d *PipePairDetector) map[string]string {
	m := make(map[string]string)
	for _, p := range d.Pairs() {
		key := string(rune('0'+int(p.Producer))) + ">" + string(rune('0'+int(p.Consumer)))
		m[key] = strings.Join(p.Via, ",")
	}
	return m
}

// The image-pipeline shape: a setup loop packs bytes, then three sibling
// hot loops decode, filter and encode — each reading exactly the array
// its predecessor wrote. The detector must find every adjacent pair
// (and the setup→decode pair), despite all four loops sharing the
// top-level induction variables.
func TestPipePairDetectorFindsImagePipeline(t *testing.T) {
	d := detectPairs(t, `
var N = 32;
var packed = [];
for (var s = 0; s < N; s++) { packed.push((s * 7 + 3) % 256); }        // loop 1
var lum = [];
for (var i = 0; i < N; i++) { lum.push((packed[i] * 299) % 1000); }    // loop 2
var tone = [];
for (var i = 0; i < N; i++) { tone.push(lum[i] < 500 ? lum[i] * 2 : lum[i] - 100); } // loop 3
var pix = [];
for (var i = 0; i < N; i++) { pix.push((tone[i] + 128) % 256); }       // loop 4
`)
	got := pairSet(d)
	want := map[string]string{
		"1>2": "packed",
		"2>3": "lum",
		"3>4": "tone",
	}
	if len(got) != len(want) {
		t.Fatalf("pairs = %v, want %v", got, want)
	}
	for k, via := range want {
		if got[k] != via {
			t.Fatalf("pair %s via = %q, want %q (all: %v)", k, got[k], via, got)
		}
	}
}

// A scalar the producer writes and the consumer reads is a genuine
// cross-dependence: streaming batches of B while A is still running
// would observe a partial accumulator.
func TestPipePairDetectorRejectsScalarFlow(t *testing.T) {
	d := detectPairs(t, `
var N = 16;
var a = [], b = [];
var sum = 0;
for (var i = 0; i < N; i++) { a.push(i * 2); sum = sum + i; }  // loop 1
for (var i = 0; i < N; i++) { b.push(a[i] + sum); }            // loop 2
`)
	if pairs := d.Pairs(); len(pairs) != 0 {
		t.Fatalf("scalar cross-flow must disqualify the pair, got %v", pairs)
	}
}

// The consumer writing back into the producer's array is a write
// conflict, not a stream.
func TestPipePairDetectorRejectsConsumerWriteBack(t *testing.T) {
	d := detectPairs(t, `
var N = 16;
var a = [];
for (var i = 0; i < N; i++) { a.push(i); }                     // loop 1
for (var i = 0; i < N; i++) { a[i] = a[i] * 2; }               // loop 2
`)
	if pairs := d.Pairs(); len(pairs) != 0 {
		t.Fatalf("write-back must disqualify the pair, got %v", pairs)
	}
}

// Structured (non-array) objects do not cross share-nothing stage
// workers, so flow through an object is not a pipeline pair even when
// the access pattern is produce -> consume.
func TestPipePairDetectorRejectsNonArrayFlow(t *testing.T) {
	d := detectPairs(t, `
var N = 8;
var state = {};
var out = [];
for (var i = 0; i < N; i++) { state["k" + i] = i * 3; }        // loop 1
for (var i = 0; i < N; i++) { out.push(state["k" + i]); }      // loop 2
`)
	if pairs := d.Pairs(); len(pairs) != 0 {
		t.Fatalf("object flow must disqualify the pair, got %v", pairs)
	}
}

// Accesses inside nested loops belong to the outermost hot loop; a
// nested writer still pairs with a later flat reader.
func TestPipePairDetectorAttributesNestedLoops(t *testing.T) {
	d := detectPairs(t, `
var N = 6;
var a = [], b = [];
for (var i = 0; i < N; i++) {                                   // loop 1 (outer)
  var acc = 0;
  for (var j = 0; j < 4; j++) { acc = acc + i * j; }            // loop 2 (inner)
  a.push(acc);
}
for (var i = 0; i < N; i++) { b.push(a[i] + 1); }               // loop 3
`)
	pairs := d.Pairs()
	if len(pairs) != 1 {
		t.Fatalf("want exactly the outer->reader pair, got %v", pairs)
	}
	if pairs[0].Producer != ast.LoopID(1) || pairs[0].Consumer != ast.LoopID(3) {
		t.Fatalf("pair = %v, want 1 -> 3", pairs[0])
	}
	if len(pairs[0].Via) != 1 || pairs[0].Via[0] != "a" {
		t.Fatalf("via = %v, want [a]", pairs[0].Via)
	}
}

// Under SetCompile(true) the pre-resolved executor must drive the same
// hooks; the detector's answer cannot depend on the execution engine.
func TestPipePairDetectorCompiledParity(t *testing.T) {
	src := `
var N = 24;
var a = [], b = [];
for (var i = 0; i < N; i++) { a.push(i * i); }
for (var i = 0; i < N; i++) { b.push(a[i] % 7); }
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	in := interp.New()
	in.SetCompile(true)
	d := NewPipePairDetector()
	in.SetHooks(d)
	if err := in.Run(prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	pairs := d.Pairs()
	if len(pairs) != 1 || pairs[0].Producer != ast.LoopID(1) || pairs[0].Consumer != ast.LoopID(2) {
		t.Fatalf("compiled run pairs = %v, want exactly 1 -> 2", pairs)
	}
}
