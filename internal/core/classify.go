package core

import (
	"math"
	"sort"

	"repro/internal/js/ast"
)

// Difficulty is the Table 3 scale for "breaking dependencies" and
// "parallelization difficulty".
type Difficulty int

// Difficulty levels, ordered.
const (
	VeryEasy Difficulty = iota
	Easy
	Medium
	Hard
	VeryHard
)

func (d Difficulty) String() string {
	switch d {
	case VeryEasy:
		return "very easy"
	case Easy:
		return "easy"
	case Medium:
		return "medium"
	case Hard:
		return "hard"
	case VeryHard:
		return "very hard"
	}
	return "?"
}

// Divergence is the Table 3 control-flow divergence scale.
type Divergence int

// Divergence levels.
const (
	DivNone Divergence = iota
	DivLittle
	DivYes
)

func (d Divergence) String() string {
	switch d {
	case DivNone:
		return "none"
	case DivLittle:
		return "little"
	case DivYes:
		return "yes"
	}
	return "?"
}

// NestReport is one row of Table 3: a loop nest with its runtime profile
// and parallelization assessment.
type NestReport struct {
	Root     ast.LoopID
	Label    string // e.g. "for(line 12)"
	Kind     string
	Line     int
	TimeNS   int64
	PctLoop  float64 // share of all loop time, in percent
	Instanc  int64
	TripMean float64
	TripStd  float64

	Divergence Divergence
	DOMAccess  bool
	DepDiff    Difficulty
	ParDiff    Difficulty

	// Evidence behind the classification.
	FlowDeps      int
	VarDeps       int
	VarFlows      int
	SharedWrites  int
	OverlapWrites int
	Recursion     bool
	DOMOpsPerIter float64
	DivergentFrac float64
	BranchPerIter float64
	Children      []ast.LoopID

	// PromotedFrom is the sequential outer loop this row was promoted out
	// of (ast.NoLoop when the row is a natural nest root).
	PromotedFrom ast.LoopID
}

// Parallelizable reports whether the nest has intrinsic data parallelism —
// no unbreakable dependencies — per the paper's ~¾-of-nests finding.
func (n *NestReport) Parallelizable() bool { return n.DepDiff <= Medium && !n.Recursion }

// ClassifyOptions tunes the Table 3 heuristics.
type ClassifyOptions struct {
	// MinNestTimeFrac drops nests below this share of loop time (the paper
	// inspects nests covering the top two-thirds of loop time).
	MinNestTimeFrac float64
	// MaxNests caps rows (0 = no cap).
	MaxNests int
}

// DefaultClassifyOptions mirror the paper's selection: inspect top nests,
// ignore trivia under 1% of loop time.
func DefaultClassifyOptions() ClassifyOptions {
	return ClassifyOptions{MinNestTimeFrac: 0.01}
}

// ClassifyNests assembles loop nests from a profiled+analysed run and
// produces Table 3 rows ordered by descending time.
//
// When a nest root is itself sequential (hard dependences) but one inner
// loop carries most of the time and is clean, the inner loop is promoted
// to the reported row — the paper does the same by hand: "In a few cases
// the parallelizable loop is not the outer loop of a nest. In these cases
// we consider the loop nest formed without some of the outer layers"
// (§4.1; fluidSim's linear-solver sweep is the canonical case).
func ClassifyNests(prog *ast.Program, lp *LoopProfiler, dep *DepAnalyzer, opts ClassifyOptions) []NestReport {
	stats := lp.AllStats()

	// Roots: loops most often entered with no loop open.
	childrenOf := make(map[ast.LoopID][]ast.LoopID)
	var roots []*LoopStats
	for _, s := range stats {
		parent := dominantParent(s)
		if parent == ast.NoLoop {
			roots = append(roots, s)
		} else {
			childrenOf[parent] = append(childrenOf[parent], s.ID)
		}
	}

	var totalLoopNS float64
	for _, r := range roots {
		totalLoopNS += r.Time.Sum()
	}
	if totalLoopNS == 0 {
		return nil
	}

	var out []NestReport
	for _, r := range roots {
		frac := r.Time.Sum() / totalLoopNS
		if frac < opts.MinNestTimeFrac {
			continue
		}
		rep := buildNestReport(prog, lp, dep, r, childrenOf, totalLoopNS)

		// Inner-nest promotion.
		if rep.DepDiff >= Hard && !rep.Recursion {
			if inner := promoteInner(prog, lp, dep, r, childrenOf, totalLoopNS); inner != nil {
				inner.PromotedFrom = r.ID
				rep = *inner
			}
		}
		out = append(out, rep)
	}

	sort.Slice(out, func(i, j int) bool { return out[i].TimeNS > out[j].TimeNS })
	if opts.MaxNests > 0 && len(out) > opts.MaxNests {
		out = out[:opts.MaxNests]
	}
	return out
}

// buildNestReport assembles the Table 3 row for the nest rooted at r.
func buildNestReport(prog *ast.Program, lp *LoopProfiler, dep *DepAnalyzer, r *LoopStats, childrenOf map[ast.LoopID][]ast.LoopID, totalLoopNS float64) NestReport {
	nest := collectNest(r.ID, childrenOf)
	rep := NestReport{
		Root:     r.ID,
		Label:    loopLabel(prog.Loops, r.ID),
		TimeNS:   int64(r.Time.Sum()),
		PctLoop:  100 * r.Time.Sum() / totalLoopNS,
		Instanc:  r.Instances,
		TripMean: r.Trips.Mean(),
		TripStd:  r.Trips.StdDev(),
		Children: nest[1:],
	}
	if idx := int(r.ID) - 1; idx >= 0 && idx < len(prog.Loops) {
		rep.Kind = prog.Loops[idx].Kind
		rep.Line = prog.Loops[idx].Line
	}

	rep.DivergentFrac, rep.BranchPerIter = lp.DivergentBranchRate(r.ID, 0.02, 0.98)

	var domOps int64
	domOps += lp.HostOps(r.ID, "dom")
	domOps += lp.HostOps(r.ID, "canvas")
	iters := lp.NestIterations(r.ID)
	if iters > 0 {
		rep.DOMOpsPerIter = float64(domOps) / float64(iters)
	}
	rep.DOMAccess = domOps > 0

	// Dependence evidence is taken at the nest root: dependences internal
	// to child loops do not block parallelizing the root's iterations
	// (e.g. a sequential per-pixel bounce loop inside a clean pixel loop).
	if sum := dep.Summary(r.ID); sum != nil {
		rep.FlowDeps = len(sum.FlowReads)
		rep.VarDeps = len(sum.VarWrites)
		rep.VarFlows = len(sum.VarFlows)
		rep.SharedWrites = len(sum.SharedPropWrites)
		rep.OverlapWrites = len(sum.OverlapPropWrites)
		rep.Recursion = sum.Recursion
	}
	// Recursion anywhere in the nest still poisons the analysis (§3.3).
	for _, id := range nest {
		if sum := dep.Summary(id); sum != nil && sum.Recursion {
			rep.Recursion = true
		}
	}
	if dep.Stack().Recursive[r.ID] {
		rep.Recursion = true
	}

	rep.Divergence = classifyDivergence(&rep, lp, r)
	rep.DepDiff = classifyDepDifficulty(&rep)
	rep.ParDiff = classifyParDifficulty(&rep)
	return rep
}

// promoteInner looks for a direct child of root that carries ≥60% of the
// root's time and classifies at least two difficulty grades easier; it
// returns that child's report, or nil.
func promoteInner(prog *ast.Program, lp *LoopProfiler, dep *DepAnalyzer, root *LoopStats, childrenOf map[ast.LoopID][]ast.LoopID, totalLoopNS float64) *NestReport {
	rootRep := buildNestReport(prog, lp, dep, root, childrenOf, totalLoopNS)
	var best *NestReport
	for _, cid := range childrenOf[root.ID] {
		cs := lp.Stats(cid)
		if cs == nil || cs.Time.Sum() < 0.6*root.Time.Sum() {
			continue
		}
		cRep := buildNestReport(prog, lp, dep, cs, childrenOf, totalLoopNS)
		if cRep.DepDiff+2 > rootRep.DepDiff {
			continue
		}
		if best == nil || cRep.TimeNS > best.TimeNS {
			c := cRep
			best = &c
		}
	}
	return best
}

func dominantParent(s *LoopStats) ast.LoopID {
	best := ast.NoLoop
	var bestN int64 = -1
	for p, n := range s.Parents {
		if n > bestN {
			best, bestN = p, n
		}
	}
	return best
}

func collectNest(root ast.LoopID, children map[ast.LoopID][]ast.LoopID) []ast.LoopID {
	out := []ast.LoopID{root}
	seen := map[ast.LoopID]bool{root: true}
	for i := 0; i < len(out); i++ {
		for _, c := range children[out[i]] {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
	}
	return out
}

// classifyDivergence maps raw branch/trip statistics onto the paper's
// none/little/yes scale (§4.2 "Control-flow divergence"):
//   - recursion inside the nest, degenerate trip counts (loops that run
//     ~once, like Ace's cascading-reflow loop), or wildly data-dependent
//     inner loop bounds → yes;
//   - branchy bodies whose outcomes are data-dependent → yes when a large
//     share of branches diverge, little when small;
//   - straight-line bodies → none.
func classifyDivergence(rep *NestReport, lp *LoopProfiler, root *LoopStats) Divergence {
	if rep.Recursion {
		return DivYes
	}
	if root.Trips.Mean() < 2 {
		return DivYes
	}
	for _, c := range rep.Children {
		cs := lp.Stats(c)
		if cs == nil || cs.Trips.Mean() <= 0 {
			continue
		}
		// data-dependent inner-loop bounds make iterations uneven
		cv := cs.Trips.StdDev() / cs.Trips.Mean()
		if cv > 0.35 {
			return DivYes
		}
	}
	if rep.BranchPerIter < 0.05 {
		return DivNone
	}
	// Divergence that comes only from plain branches is "little" unless it
	// dominates: the paper grades guarded-instruction-sized branches as
	// transformable to predicated/select form without major impact.
	if rep.DivergentFrac > 0.45 {
		return DivYes
	}
	if rep.DivergentFrac < 0.001 && rep.BranchPerIter < 0.5 {
		return DivNone
	}
	return DivLittle
}

// classifyDepDifficulty maps the dependence summary to the paper's scale.
// True loop-carried chains dominate the score: flow dependences through
// heap locations and through variables (accumulators, convergence flags),
// plus overlapping writes (real output dependences). Shared-but-disjoint
// writes (the pixel-buffer pattern) are cheap to privatize, and variables
// that are written but never read across iterations (JavaScript's
// function-scoped temporaries, §3.3's `var p`) cost nothing: extracting
// the body into a function privatizes them, as the paper's forEach
// variant shows.
func classifyDepDifficulty(rep *NestReport) Difficulty {
	if rep.Recursion {
		return VeryHard
	}
	score := 4*rep.FlowDeps + 2*rep.OverlapWrites + 3*rep.VarFlows + rep.SharedWrites/4
	switch {
	case score == 0:
		return VeryEasy
	case score <= 3:
		return Easy
	case score <= 13:
		return Medium
	case score <= 26:
		return Hard
	default:
		return VeryHard
	}
}

// classifyParDifficulty folds browser limitations on top of the
// dependence difficulty: a loop that touches the (non-concurrent) DOM or
// canvas on most iterations cannot be parallelized in today's browsers at
// all (§4.1), and very fine-grained nests aren't worth the fork/join.
func classifyParDifficulty(rep *NestReport) Difficulty {
	d := rep.DepDiff
	if rep.DOMAccess {
		if rep.DOMOpsPerIter >= 0.5 {
			return VeryHard
		}
		if d < Hard {
			d = Hard
		}
	}
	if rep.TripMean < 8 && d < Medium {
		d = Medium
	}
	return d
}

// AmdahlBound returns the asymptotic (infinite-core) speedup bound
// 1/(1-P), where P is the fraction of scriptTime covered by the nests
// accepted by keep. The paper reports this bound exceeds 3× for 5 of the
// 12 applications when counting only easy-to-parallelize loops.
func AmdahlBound(nests []NestReport, scriptNS int64, keep func(*NestReport) bool) float64 {
	if scriptNS <= 0 {
		return 1
	}
	var par int64
	for i := range nests {
		if keep(&nests[i]) {
			par += nests[i].TimeNS
		}
	}
	p := float64(par) / float64(scriptNS)
	if p >= 0.999 {
		p = 0.999
	}
	if p < 0 {
		p = 0
	}
	return 1 / (1 - p)
}

// AmdahlBoundCores returns the finite-core Amdahl bound 1/((1-P)+P/n).
func AmdahlBoundCores(nests []NestReport, scriptNS int64, cores int, keep func(*NestReport) bool) float64 {
	if scriptNS <= 0 || cores <= 0 {
		return 1
	}
	var par int64
	for i := range nests {
		if keep(&nests[i]) {
			par += nests[i].TimeNS
		}
	}
	p := math.Min(float64(par)/float64(scriptNS), 0.999)
	return 1 / ((1 - p) + p/float64(cores))
}
