package core

import (
	"sort"

	"repro/internal/js/ast"
	"repro/internal/js/interp"
)

// LoopStats aggregates the §3.2 statistics for one syntactic loop: the
// number of times it was encountered (instances), and total/mean/variance
// of both running time and trip count, maintained online with Welford's
// algorithm.
type LoopStats struct {
	ID        ast.LoopID
	Instances int64
	Time      Welford // per-instance running time (ns, includes nested loops)
	Trips     Welford // per-instance trip count
	SelfTime  int64   // time excluding time spent in nested (dynamically) loops

	// Parents counts, per dynamically-enclosing loop, how many instances of
	// this loop began under it; NoLoop means "top level" (nest root).
	Parents map[ast.LoopID]int64
}

// LoopProfiler implements the loop-profiling mode of §3.2.
type LoopProfiler struct {
	interp.NopHooks
	clock interface{ Now() int64 }

	stats map[ast.LoopID]*LoopStats
	live  []liveLoop

	// branch divergence bookkeeping: per (root loop, branch) taken counts,
	// consumed by the Table 3 divergence classifier.
	branches map[branchKey]*branchStats
	// hostOps counts DOM/canvas operations per root loop.
	hostOps map[hostKey]int64
	// iterations per root loop (all loops in nest), to normalize rates.
	nestEvents map[ast.LoopID]int64
	// callsInNest counts function-call events under each root loop,
	// a control-flow-divergence signal (recursion, virtual dispatch).
	callDepthIn int
}

type liveLoop struct {
	id      ast.LoopID
	start   int64
	trips   int64
	childNS int64 // time consumed by nested loop instances
}

type branchKey struct {
	root   ast.LoopID
	branch int
}

type branchStats struct {
	taken    int64
	notTaken int64
}

type hostKey struct {
	root     ast.LoopID
	category string
}

// NewLoopProfiler returns a loop profiler reading the interpreter clock.
// It also registers itself as the interpreter's host-op listener so DOM
// and canvas activity can be attributed to loop nests.
func NewLoopProfiler(in *interp.Interp) *LoopProfiler {
	p := &LoopProfiler{
		clock:      in,
		stats:      make(map[ast.LoopID]*LoopStats),
		branches:   make(map[branchKey]*branchStats),
		hostOps:    make(map[hostKey]int64),
		nestEvents: make(map[ast.LoopID]int64),
	}
	in.SetHostOpListener(p.noteHostOp)
	return p
}

func (p *LoopProfiler) statsFor(id ast.LoopID) *LoopStats {
	s, ok := p.stats[id]
	if !ok {
		s = &LoopStats{ID: id, Parents: make(map[ast.LoopID]int64)}
		p.stats[id] = s
	}
	return s
}

func (p *LoopProfiler) root() ast.LoopID {
	if len(p.live) == 0 {
		return ast.NoLoop
	}
	return p.live[0].id
}

// LoopEnter implements interp.Hooks.
func (p *LoopProfiler) LoopEnter(id ast.LoopID) {
	s := p.statsFor(id)
	s.Instances++
	parent := ast.NoLoop
	if len(p.live) > 0 {
		parent = p.live[len(p.live)-1].id
	}
	s.Parents[parent]++
	p.live = append(p.live, liveLoop{id: id, start: p.clock.Now()})
}

// LoopIter implements interp.Hooks. Iteration events are credited to
// every open loop so statistics work for nested loops promoted to nest
// roots (the paper reports inner nests when the outer loop is
// sequential, §4.1).
func (p *LoopProfiler) LoopIter(id ast.LoopID) {
	for i := len(p.live) - 1; i >= 0; i-- {
		if p.live[i].id == id {
			p.live[i].trips++
			break
		}
	}
	for i := range p.live {
		if firstOccurrence(p.live, i) {
			p.nestEvents[p.live[i].id]++
		}
	}
}

// firstOccurrence reports whether live[i] is the first frame of its loop
// (duplicates only appear under recursion; the stack is shallow, so the
// quadratic scan beats allocating a set per event).
func firstOccurrence(live []liveLoop, i int) bool {
	for j := 0; j < i; j++ {
		if live[j].id == live[i].id {
			return false
		}
	}
	return true
}

// LoopExit implements interp.Hooks.
func (p *LoopProfiler) LoopExit(id ast.LoopID) {
	now := p.clock.Now()
	for i := len(p.live) - 1; i >= 0; i-- {
		if p.live[i].id != id {
			continue
		}
		l := p.live[i]
		dur := now - l.start
		s := p.statsFor(id)
		s.Time.Add(float64(dur))
		s.Trips.Add(float64(l.trips))
		s.SelfTime += dur - l.childNS
		p.live = append(p.live[:i], p.live[i+1:]...)
		if i > 0 {
			p.live[i-1].childNS += dur
		}
		return
	}
}

// BranchTaken implements interp.Hooks: outcomes are recorded inside
// loops, attributed to every open loop.
func (p *LoopProfiler) BranchTaken(branch int, taken bool) {
	for i := range p.live {
		if !firstOccurrence(p.live, i) {
			continue
		}
		r := p.live[i].id
		k := branchKey{root: r, branch: branch}
		b, ok := p.branches[k]
		if !ok {
			b = &branchStats{}
			p.branches[k] = b
		}
		if taken {
			b.taken++
		} else {
			b.notTaken++
		}
	}
}

func (p *LoopProfiler) noteHostOp(category, op string) {
	for i := range p.live {
		if !firstOccurrence(p.live, i) {
			continue
		}
		p.hostOps[hostKey{root: p.live[i].id, category: category}]++
	}
}

// Stats returns the statistics for one loop (nil if never entered).
func (p *LoopProfiler) Stats(id ast.LoopID) *LoopStats { return p.stats[id] }

// AllStats returns every profiled loop, ordered by descending total time.
func (p *LoopProfiler) AllStats() []*LoopStats {
	out := make([]*LoopStats, 0, len(p.stats))
	for _, s := range p.stats {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time.Sum() != out[j].Time.Sum() {
			return out[i].Time.Sum() > out[j].Time.Sum()
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// HostOps returns the number of host operations of the category observed
// under the given nest root.
func (p *LoopProfiler) HostOps(root ast.LoopID, category string) int64 {
	return p.hostOps[hostKey{root: root, category: category}]
}

// NestIterations returns the total iteration events observed under root.
func (p *LoopProfiler) NestIterations(root ast.LoopID) int64 { return p.nestEvents[root] }

// DivergentBranchRate returns, for the nest rooted at root, the fraction
// of branch executions whose outcome is data-dependent (taken ratio
// strictly between lo and hi). It also returns the total branch executions
// per iteration, the raw material for the Table 3 divergence column.
func (p *LoopProfiler) DivergentBranchRate(root ast.LoopID, lo, hi float64) (divergentFrac, branchesPerIter float64) {
	var total, divergent int64
	for k, b := range p.branches {
		if k.root != root {
			continue
		}
		n := b.taken + b.notTaken
		total += n
		ratio := float64(b.taken) / float64(n)
		if ratio > lo && ratio < hi {
			divergent += n
		}
	}
	iters := p.nestEvents[root]
	if total == 0 || iters == 0 {
		return 0, 0
	}
	return float64(divergent) / float64(total), float64(total) / float64(iters)
}
