package core

import (
	"strings"
	"testing"

	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/parser"
)

// nbodySrc is the paper's Fig. 6 N-body step, reproduced with a bounded
// driver loop. Line numbers matter: the for loop of interest must be
// identifiable, and the while loop encloses it dynamically.
const nbodySrc = `var bodies = [];
function Particle() { this.x = 0; this.y = 0; this.vX = 0; this.vY = 0; this.fX = 0; this.fY = 0; this.m = 1; }
var dT = 0.01;
for (var s = 0; s < 16; s++) { bodies.push(new Particle()); }
function computeForces() {
  for (var i = 0; i < bodies.length; i++) {
    var b = bodies[i];
    b.fX = 0.001 * (i % 3 - 1);
    b.fY = 0.001 * (i % 5 - 2);
  }
}
function step() {
  computeForces();
  var com = new Particle();
  for (var i = 0; i < bodies.length; i++) {
    var p = bodies[i];
    p.vX += p.fX / p.m * dT;
    p.vY += p.fY / p.m * dT;
    p.x += p.vX * dT;
    p.y += p.vY * dT;
    com.m = com.m + p.m;
    com.x = (com.x * (com.m - p.m) + p.x * p.m) / com.m;
    com.y = (com.y * (com.m - p.m) + p.y * p.m) / com.m;
  }
  return com;
}
var steps = 0;
while (steps < 4) {
  var com = step();
  steps++;
}
`

// nbodyForEachSrc is the §3.3 variant: the body of the update loop is
// extracted into a callback, making p a per-iteration binding.
const nbodyForEachSrc = `var bodies = [];
function Particle() { this.x = 0; this.y = 0; this.vX = 0; this.vY = 0; this.fX = 0; this.fY = 0; this.m = 1; }
var dT = 0.01;
for (var s = 0; s < 16; s++) { bodies.push(new Particle()); }
function computeForces() {
  for (var i = 0; i < bodies.length; i++) {
    var b = bodies[i];
    b.fX = 0.001 * (i % 3 - 1);
    b.fY = 0.001 * (i % 5 - 2);
  }
}
function step() {
  var com = new Particle();
  computeForces();
  for (var i = 0; i < bodies.length; i++) {
    (function (p) {
      p.vX += p.fX / p.m * dT;
      p.vY += p.fY / p.m * dT;
      p.x += p.vX * dT;
      p.y += p.vY * dT;
      com.m = com.m + p.m;
      com.x = (com.x * (com.m - p.m) + p.x * p.m) / com.m;
      com.y = (com.y * (com.m - p.m) + p.y * p.m) / com.m;
    })(bodies[i]);
  }
  return com;
}
var steps = 0;
while (steps < 4) {
  var com = step();
  steps++;
}
`

// analyzeNBody runs a source under full dependence analysis and returns
// the analyzer plus loop identities.
func analyzeNBody(t *testing.T, src string) (*DepAnalyzer, *ast.Program, ast.LoopID, ast.LoopID) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	in := interp.New()
	d := NewDepAnalyzer(ast.NoLoop)
	in.SetHooks(d)
	if err := in.Run(prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	var whileID, updateForID ast.LoopID
	for _, li := range prog.Loops {
		if li.Kind == "while" {
			whileID = li.ID
		}
	}
	// The update loop is the for loop inside step(); it is the third
	// C-style for (after the seeding loop and computeForces' loop) in the
	// plain variant and in the forEach variant alike.
	var fors []ast.LoopInfo
	for _, li := range prog.Loops {
		if li.Kind == "for" {
			fors = append(fors, li)
		}
	}
	if len(fors) < 3 {
		t.Fatalf("expected >=3 for loops, got %d", len(fors))
	}
	updateForID = fors[2].ID
	if whileID == 0 {
		t.Fatalf("while loop not found")
	}
	return d, prog, whileID, updateForID
}

func findWarning(d *DepAnalyzer, kind WarnKind, name string) *Warning {
	for _, w := range d.Warnings() {
		if w.Kind == kind && w.Name == name {
			return w
		}
	}
	return nil
}

// charAt returns the level characterization for a loop, or nil.
func charAt(c Characterization, id ast.LoopID) *LevelChar {
	for i := range c {
		if c[i].Loop == id {
			return &c[i]
		}
	}
	return nil
}

func TestNBodyWarningWriteToP(t *testing.T) {
	d, _, whileID, forID := analyzeNBody(t, nbodySrc)
	w := findWarning(d, WarnVarWrite, "p")
	if w == nil {
		t.Fatalf("no var-write warning for p; warnings: %v", warningNames(d))
	}
	// while(line ..) ok ok → for(line ..) ok dependence
	lw := charAt(w.Char, whileID)
	lf := charAt(w.Char, forID)
	if lw == nil || lf == nil {
		t.Fatalf("char %v missing while/for levels", w.Char)
	}
	if !lw.InstanceOK || !lw.IterationOK {
		t.Errorf("while level = %+v, want ok ok", *lw)
	}
	if !lf.InstanceOK || lf.IterationOK {
		t.Errorf("for level = %+v, want ok dependence", *lf)
	}
}

func TestNBodyWarningWritesToPropertiesOfP(t *testing.T) {
	d, _, whileID, forID := analyzeNBody(t, nbodySrc)
	for _, name := range []string{"p.vX", "p.vY", "p.x", "p.y"} {
		w := findWarning(d, WarnPropWrite, name)
		if w == nil {
			t.Fatalf("no prop-write warning for %s; warnings: %v", name, warningNames(d))
		}
		lw, lf := charAt(w.Char, whileID), charAt(w.Char, forID)
		if lw == nil || lf == nil {
			t.Fatalf("%s: char %v missing levels", name, w.Char)
		}
		if !lw.InstanceOK || !lw.IterationOK {
			t.Errorf("%s while level = %+v, want ok ok", name, *lw)
		}
		if !lf.InstanceOK || lf.IterationOK {
			t.Errorf("%s for level = %+v, want ok dependence", name, *lf)
		}
	}
}

func TestNBodyWarningWritesToCom(t *testing.T) {
	d, _, whileID, forID := analyzeNBody(t, nbodySrc)
	for _, name := range []string{"com.m", "com.x", "com.y"} {
		w := findWarning(d, WarnPropWrite, name)
		if w == nil {
			t.Fatalf("no prop-write warning for %s; warnings: %v", name, warningNames(d))
		}
		lw, lf := charAt(w.Char, whileID), charAt(w.Char, forID)
		if !lw.InstanceOK || !lw.IterationOK {
			t.Errorf("%s while level = %+v, want ok ok", name, *lw)
		}
		if !lf.InstanceOK || lf.IterationOK {
			t.Errorf("%s for level = %+v, want ok dependence", name, *lf)
		}
	}
}

func TestNBodyFlowReadsOfCom(t *testing.T) {
	d, _, _, forID := analyzeNBody(t, nbodySrc)
	for _, name := range []string{"com.m", "com.x", "com.y"} {
		w := findWarning(d, WarnFlowRead, name)
		if w == nil {
			t.Fatalf("no flow-read warning for %s; warnings: %v", name, warningNames(d))
		}
		lf := charAt(w.Char, forID)
		if lf == nil || !lf.InstanceOK || lf.IterationOK {
			t.Errorf("%s for level = %v, want ok dependence", name, w.Char)
		}
	}
	// The flow dependence lands in the for loop's summary: the center-of-
	// mass accumulation makes the loop truly sequential as written.
	sum := d.Summary(forID)
	if sum == nil || len(sum.FlowReads) == 0 {
		t.Fatalf("no flow reads recorded for the update loop")
	}
}

func TestNBodyForEachVariantDropsPWarnings(t *testing.T) {
	// §3.3: extracting the body into a function makes the p.* accesses
	// private per iteration; the com warnings stand.
	d, _, _, forID := analyzeNBody(t, nbodyForEachSrc)
	for _, name := range []string{"p.vX", "p.vY", "p.x", "p.y"} {
		if w := findWarning(d, WarnPropWrite, name); w != nil {
			if !w.Char.DependsAt(forID) {
				continue // characterized clean at the loop of interest
			}
			t.Errorf("forEach variant still warns on %s: %v", name, w.Char)
		}
	}
	found := false
	for _, name := range []string{"com.m", "com.x", "com.y"} {
		if w := findWarning(d, WarnPropWrite, name); w != nil && w.Char.DependsAt(forID) {
			found = true
		}
	}
	if !found {
		t.Errorf("forEach variant lost the com warnings; warnings: %v", warningNames(d))
	}
}

func TestNBodyNoPolymorphicVars(t *testing.T) {
	d, _, _, _ := analyzeNBody(t, nbodySrc)
	if vars := d.PolymorphicVars(); len(vars) != 0 {
		t.Errorf("unexpected polymorphic vars: %v", vars)
	}
}

func TestNBodyWarningFormatMatchesPaperNotation(t *testing.T) {
	d, prog, _, _ := analyzeNBody(t, nbodySrc)
	w := findWarning(d, WarnVarWrite, "p")
	if w == nil {
		t.Fatal("missing warning for p")
	}
	s := w.Format(prog.Loops)
	if !strings.Contains(s, "while(line") || !strings.Contains(s, "for(line") {
		t.Errorf("format %q lacks loop labels", s)
	}
	if !strings.Contains(s, "ok ok") || !strings.Contains(s, "ok dependence") {
		t.Errorf("format %q lacks ok/dependence flags", s)
	}
}

func TestNBodyInductionVariableExempt(t *testing.T) {
	d, _, _, forID := analyzeNBody(t, nbodySrc)
	if w := findWarning(d, WarnVarWrite, "i"); w != nil && w.Char.DependsAt(forID) {
		t.Errorf("induction variable i reported: %v", w.Char)
	}
}

func warningNames(d *DepAnalyzer) []string {
	var out []string
	for _, w := range d.Warnings() {
		out = append(out, w.Kind.String()+":"+w.Name)
	}
	return out
}
