package core

import (
	"testing"

	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/parser"
)

// classifyProgram runs src under profiler+analyzer and classifies nests.
func classifyProgram(t *testing.T, src string) []NestReport {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	in := interp.New()
	lp := NewLoopProfiler(in)
	dep := NewDepAnalyzer(ast.NoLoop)
	in.SetHooks(interp.NewMultiHooks(lp, dep))
	if err := in.Run(prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	return ClassifyNests(prog, lp, dep, DefaultClassifyOptions())
}

func TestClassifyDisjointPixelLoop(t *testing.T) {
	nests := classifyProgram(t, `
var out = [];
for (var i = 0; i < 600; i++) {
  out[i] = (i * 7) % 255;
}
`)
	if len(nests) != 1 {
		t.Fatalf("nests = %d", len(nests))
	}
	n := nests[0]
	if n.DepDiff != VeryEasy {
		t.Errorf("disjoint writes: dep = %s, want very easy", n.DepDiff)
	}
	if n.Divergence != DivNone {
		t.Errorf("straight-line body: divergence = %s, want none", n.Divergence)
	}
	if !n.Parallelizable() {
		t.Error("pixel loop must be parallelizable")
	}
	if n.TripMean != 600 || n.Instanc != 1 {
		t.Errorf("profile: %d instances, %.0f trips", n.Instanc, n.TripMean)
	}
}

func TestClassifySequentialAccumulation(t *testing.T) {
	nests := classifyProgram(t, `
var chain = [1];
for (var i = 1; i < 400; i++) {
  chain[i] = chain[i - 1] * 1.01;   // flow dependence
}
`)
	n := nests[0]
	if n.FlowDeps == 0 {
		t.Error("recurrence not detected as flow dependence")
	}
	if n.DepDiff < Medium {
		t.Errorf("recurrence: dep = %s, want >= medium", n.DepDiff)
	}
}

func TestClassifyDegenerateTripCount(t *testing.T) {
	nests := classifyProgram(t, `
function render() {
  var changed = true;
  while (changed) { changed = false; }
}
for (var f = 0; f < 200; f++) { render(); }
`)
	// find the while nest (child of the for or its own)
	var while *NestReport
	for i := range nests {
		if nests[i].Kind == "while" {
			while = &nests[i]
		}
		for _, c := range nests[i].Children {
			_ = c
		}
	}
	if while == nil {
		// the while may be a child of the for; classify it directly via trips
		if nests[0].TripMean < 2 && nests[0].Divergence != DivYes {
			t.Errorf("degenerate loop divergence = %s, want yes", nests[0].Divergence)
		}
		return
	}
	if while.Divergence != DivYes {
		t.Errorf("~1-trip loop divergence = %s, want yes (Ace's shape)", while.Divergence)
	}
}

func TestClassifyRecursionPoisons(t *testing.T) {
	nests := classifyProgram(t, `
function f(n) {
  for (var i = 0; i < 3; i++) {
    if (n > 0) { f(n - 1); }
  }
}
for (var k = 0; k < 50; k++) { f(2); }
`)
	poisoned := false
	for _, n := range nests {
		if n.Recursion {
			poisoned = true
			if n.DepDiff != VeryHard {
				t.Errorf("recursive nest dep = %s, want very hard", n.DepDiff)
			}
			if n.Parallelizable() {
				t.Error("recursive nest marked parallelizable")
			}
		}
	}
	if !poisoned {
		t.Error("no nest carries the recursion bail-out")
	}
}

func TestClassifyDataDependentInnerBounds(t *testing.T) {
	nests := classifyProgram(t, `
var total = 0;
for (var i = 0; i < 120; i++) {
  var bound = (i * 37) % 50;        // 0..49: wildly varying inner trips
  for (var j = 0; j < bound; j++) {
    total += j;
  }
}
`)
	outer := nests[0]
	if outer.Divergence != DivYes {
		t.Errorf("varying inner bounds: divergence = %s, want yes", outer.Divergence)
	}
}

func TestMinNestTimeFracFiltersTrivia(t *testing.T) {
	nests := classifyProgram(t, `
var a = 0, b = 0;
for (var i = 0; i < 10000; i++) { a += i; }
for (var j = 0; j < 3; j++) { b += j; }   // <1% of loop time
`)
	if len(nests) != 1 {
		t.Fatalf("trivial nest not filtered: %d rows", len(nests))
	}
}

func TestMaxNestsCap(t *testing.T) {
	prog := parser.MustParse(`
var a = 0;
for (var i1 = 0; i1 < 500; i1++) { a += i1; }
for (var i2 = 0; i2 < 500; i2++) { a += i2; }
for (var i3 = 0; i3 < 500; i3++) { a += i3; }
`)
	in := interp.New()
	lp := NewLoopProfiler(in)
	dep := NewDepAnalyzer(ast.NoLoop)
	in.SetHooks(interp.NewMultiHooks(lp, dep))
	if err := in.Run(prog); err != nil {
		t.Fatal(err)
	}
	nests := ClassifyNests(prog, lp, dep, ClassifyOptions{MinNestTimeFrac: 0.01, MaxNests: 2})
	if len(nests) != 2 {
		t.Errorf("cap ignored: %d rows", len(nests))
	}
}

func TestPromotionRequiresCleanInner(t *testing.T) {
	// Outer sequential (reads its own previous writes), inner clean and
	// dominant → the inner row is promoted.
	nests := classifyProgram(t, `
var cur = [], next = [];
var energy = 0;
var residual = 1;
for (var i = 0; i < 64; i++) { cur.push(i); next.push(0); }
for (var k = 0; k < 30; k++) {
  for (var j = 0; j < 64; j++) {
    next[j] = cur[j] * 0.5 + 1;
  }
  var tmp = cur; cur = next; next = tmp;
  energy = energy * 0.5 + cur[0];   // loop-carried scalar chain
  residual = residual * 0.9 + energy; // and another
}
`)
	var promoted *NestReport
	for i := range nests {
		if nests[i].PromotedFrom != ast.NoLoop {
			promoted = &nests[i]
		}
	}
	if promoted == nil {
		t.Fatalf("no promotion happened; nests: %+v", nests)
	}
	if promoted.DepDiff > Easy {
		t.Errorf("promoted inner dep = %s", promoted.DepDiff)
	}
	if promoted.TripMean != 64 {
		t.Errorf("promoted trips = %.0f, want 64 (the j loop)", promoted.TripMean)
	}
}
