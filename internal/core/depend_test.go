package core

import (
	"strings"
	"testing"

	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/parser"
)

func analyze(t *testing.T, src string, focus ast.LoopID) (*DepAnalyzer, *ast.Program) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	in := interp.New()
	d := NewDepAnalyzer(focus)
	in.SetHooks(d)
	if err := in.Run(prog); err != nil {
		t.Fatalf("run: %v", err)
	}
	return d, prog
}

func TestFocusModeFiltersWarnings(t *testing.T) {
	src := `
var a = 0, b = 0;
for (var i = 0; i < 5; i++) { a += i; }   // loop 1
for (var j = 0; j < 5; j++) { b += j; }   // loop 2
`
	// Focused on loop 2: warnings about `a` (loop 1 only) must not appear.
	d, _ := analyze(t, src, ast.LoopID(2))
	for _, w := range d.Warnings() {
		if w.Name == "a" {
			t.Errorf("focused analysis leaked loop-1 warning: %v", w)
		}
	}
	foundB := false
	for _, w := range d.Warnings() {
		if w.Name == "b" {
			foundB = true
		}
	}
	if !foundB {
		t.Error("focused analysis missed its own loop")
	}
}

func TestAccumulatorIsVarFlow(t *testing.T) {
	d, _ := analyze(t, `
var sum = 0;
for (var i = 0; i < 10; i++) { sum += i; }
`, ast.NoLoop)
	sum := d.Summary(1)
	if sum == nil {
		t.Fatal("no summary for loop 1")
	}
	if _, ok := sum.VarFlows["sum"]; !ok {
		t.Errorf("accumulator not in VarFlows: %v", sum.VarFlows)
	}
	if _, ok := sum.VarFlows["i"]; ok {
		t.Error("induction variable counted as loop-carried")
	}
}

func TestPrivatizableTemporaryIsNotVarFlow(t *testing.T) {
	d, _ := analyze(t, `
var out = [];
for (var i = 0; i < 10; i++) {
  var tmp = i * 2;    // function-scoped but written-then-read same iteration
  out.push(tmp + 1);
}
`, ast.NoLoop)
	sum := d.Summary(1)
	if sum == nil {
		t.Fatal("no summary")
	}
	if _, ok := sum.VarFlows["tmp"]; ok {
		t.Error("same-iteration temporary counted as loop-carried")
	}
	// ...but it IS reported as a (a)-style warning, like the paper's `var p`
	found := false
	for _, w := range d.Warnings() {
		if w.Kind == WarnVarWrite && w.Name == "tmp" {
			found = true
		}
	}
	if !found {
		t.Error("function-scoped temporary write not warned (paper reports these)")
	}
}

func TestOverlapVsDisjointWrites(t *testing.T) {
	// disjoint: each iteration writes its own element
	d1, _ := analyze(t, `
var a = [];
for (var i = 0; i < 8; i++) { a[i] = i; }
`, ast.NoLoop)
	if s := d1.Summary(1); s != nil && len(s.OverlapPropWrites) != 0 {
		t.Errorf("disjoint writes flagged as overlap: %v", s.OverlapPropWrites)
	}

	// overlapping: every iteration rewrites element 0
	d2, _ := analyze(t, `
var a = [0];
for (var i = 0; i < 8; i++) { a[0] = i; }
`, ast.NoLoop)
	s := d2.Summary(1)
	if s == nil || len(s.OverlapPropWrites) == 0 {
		t.Error("same-element rewrites not flagged as overlap")
	}
}

func TestCrossInstanceVsCrossIteration(t *testing.T) {
	// the inner loop writes the same elements once per OUTER iteration:
	// cross-instance at the inner loop, cross-iteration at the outer.
	d, _ := analyze(t, `
var a = [0, 0, 0];
for (var o = 0; o < 4; o++) {
  for (var i = 0; i < 3; i++) { a[i] = o; }
}
`, ast.NoLoop)
	outer, inner := d.Summary(1), d.Summary(2)
	if outer == nil || inner == nil {
		t.Fatal("missing summaries")
	}
	if len(outer.OverlapPropWrites) == 0 {
		t.Error("outer loop: same elements rewritten each iteration — overlap expected")
	}
	if len(inner.OverlapPropWrites) != 0 {
		t.Errorf("inner loop: writes are disjoint per iteration; got overlap %v", inner.OverlapPropWrites)
	}
	if len(inner.CrossInstance) == 0 {
		t.Error("inner loop: cross-instance sharing expected")
	}
}

func TestReadOnlySharedStateIsClean(t *testing.T) {
	d, _ := analyze(t, `
var table = [1, 2, 3, 4];
var out = [];
for (var i = 0; i < 4; i++) { out[i] = table[i] * 2; }
`, ast.NoLoop)
	s := d.Summary(1)
	if s == nil {
		t.Fatal("no summary")
	}
	for name := range s.FlowReads {
		if strings.HasPrefix(name, "table") {
			t.Errorf("read-only input flagged as flow dependence: %v", s.FlowReads)
		}
	}
}

func TestRecursionBailOutPoisonsNest(t *testing.T) {
	d, _ := analyze(t, `
function rec(n) {
  for (var i = 0; i < 2; i++) {
    if (n > 0) { rec(n - 1); } // re-enters loop 1 while open
  }
}
rec(3);
`, ast.NoLoop)
	s := d.Summary(1)
	if s == nil || !s.Recursion {
		t.Error("recursive loop re-entry not poisoned (§3.3 bail-out)")
	}
	found := false
	for _, w := range d.Warnings() {
		if w.Kind == WarnRecursion {
			found = true
		}
	}
	if !found {
		t.Error("no recursion warning raised")
	}
}

func TestPolymorphicVariableDetected(t *testing.T) {
	d, _ := analyze(t, `
var v = 1;
for (var i = 0; i < 3; i++) {
  if (i === 1) { v = "now a string"; } else { v = i; }
}
var nullish = null;
nullish = undefined;
nullish = null; // undefined/null transitions are exempt (§4.2)
`, ast.NoLoop)
	vars := d.PolymorphicVars()
	foundV := false
	for _, name := range vars {
		if name == "v" {
			foundV = true
		}
		if name == "nullish" {
			t.Error("null/undefined transitions counted as polymorphism")
		}
	}
	if !foundV {
		t.Errorf("polymorphic v not detected: %v", vars)
	}
}

func TestWarningDedupCounts(t *testing.T) {
	d, _ := analyze(t, `
var g = 0;
for (var i = 0; i < 50; i++) { g = i; }
`, ast.NoLoop)
	for _, w := range d.Warnings() {
		if w.Name == "g" && w.Kind == WarnVarWrite {
			if w.Count != 50 {
				t.Errorf("g warning count = %d, want 50 (deduped with counts)", w.Count)
			}
			return
		}
	}
	t.Error("no warning for g")
}

func TestWarningsForLoopFilter(t *testing.T) {
	d, _ := analyze(t, `
var a = 0, b = 0;
for (var i = 0; i < 3; i++) { a++; }
for (var j = 0; j < 3; j++) { b++; }
`, ast.NoLoop)
	for _, w := range d.WarningsFor(1) {
		for _, lvl := range w.Char {
			if lvl.Loop == 2 {
				t.Errorf("WarningsFor(1) returned loop-2 characterization: %v", w)
			}
		}
	}
	if len(d.WarningsFor(1)) == 0 {
		t.Error("no warnings for loop 1")
	}
}

func TestObjectStampFallbackForComplexBases(t *testing.T) {
	// Access through a non-identifier base (arr[i].x) characterizes
	// against the object's creation stamp.
	d, _ := analyze(t, `
var objs = [];
for (var s = 0; s < 3; s++) { objs.push({x: 0}); }
for (var i = 0; i < 3; i++) {
  objs[i].x = i; // base is an IndexExpr, not a simple reference
}
`, ast.NoLoop)
	// objects created in loop 1, written in loop 2 → warning at loop 2
	found := false
	for _, w := range d.Warnings() {
		if w.Kind == WarnPropWrite && strings.Contains(w.Name, ".x") {
			found = true
		}
	}
	if !found {
		t.Errorf("no prop-write warning through complex base; warnings: %v", warningNames(d))
	}
}

func TestStackBalancedAfterAnalysis(t *testing.T) {
	d, _ := analyze(t, `
for (var i = 0; i < 3; i++) {
  for (var j = 0; j < 2; j++) {
    if (j === 1) { break; }
  }
}
`, ast.NoLoop)
	if d.Stack().Depth() != 0 {
		t.Errorf("stack depth %d after run", d.Stack().Depth())
	}
}
