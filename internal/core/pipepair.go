package core

import (
	"sort"

	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/value"
)

// PipePairDetector finds produce → consume hot-loop pairs: a later loop
// B that reads the array(s) an earlier loop A wrote, with no other
// cross-dependence between the two. That is exactly the shape flat
// mapPar cannot exploit (B depends on A) but a streaming pipeline can
// (autopar.PipelineSpec): convert each loop body to a stage elemental
// and stream index batches A → B.
//
// Like the Fortuna-style taskgraph Collector this is access-set
// analysis at object/binding granularity — conservative, never
// overestimating safety: any shared scalar, any non-array object flow,
// any write-write overlap disqualifies the pair. Whether each loop's
// *own* iterations are independent is the existing DepAnalyzer's
// question; the detector answers only the between-loops half.
//
// Accesses are attributed to the outermost open loop (nested loops are
// part of their enclosing hot loop's work), and loop header clauses
// (init/post, i.e. the induction variable) are exempted so two sibling
// loops sharing `var i` are not a false cross-dependence.
type PipePairDetector struct {
	interp.NopHooks
	depth    int // open loop nesting
	headers  int // open header-clause brackets
	cur      *loopAccess
	order    []*loopAccess
	byID     map[ast.LoopID]*loopAccess
	objNames map[*value.Object]string
	setCap   int
}

// loopAccess is one outermost loop's merged access sets (merged across
// dynamic instances of the same syntactic loop).
type loopAccess struct {
	id        ast.LoopID
	varReads  map[*interp.Binding]string
	varWrites map[*interp.Binding]string
	objReads  map[*value.Object]bool
	objWrites map[*value.Object]bool
	// fresh marks objects allocated inside this loop: writes to them are
	// initialization, not mutation of upstream state, and they only
	// matter if a later loop reads them (then they are the via array).
	fresh map[*value.Object]bool
}

// PipePair is one detected produce → consume pair.
type PipePair struct {
	Producer, Consumer ast.LoopID
	// Via names the arrays written by Producer and read by Consumer
	// (sorted; the binding name of the first access, or the object
	// class when the access never went through a simple variable).
	Via []string
}

// NewPipePairDetector returns a detector to install as interpreter
// hooks (alone or under a MultiHooks mux).
func NewPipePairDetector() *PipePairDetector {
	return &PipePairDetector{
		byID:     make(map[ast.LoopID]*loopAccess),
		objNames: make(map[*value.Object]string),
		setCap:   1 << 16,
	}
}

// LoopEnter implements interp.Hooks.
func (d *PipePairDetector) LoopEnter(id ast.LoopID) {
	d.depth++
	if d.depth != 1 {
		return
	}
	la := d.byID[id]
	if la == nil {
		la = &loopAccess{
			id:        id,
			varReads:  make(map[*interp.Binding]string),
			varWrites: make(map[*interp.Binding]string),
			objReads:  make(map[*value.Object]bool),
			objWrites: make(map[*value.Object]bool),
			fresh:     make(map[*value.Object]bool),
		}
		d.byID[id] = la
		d.order = append(d.order, la)
	}
	d.cur = la
}

// LoopExit implements interp.Hooks.
func (d *PipePairDetector) LoopExit(id ast.LoopID) {
	if d.depth > 0 {
		d.depth--
	}
	if d.depth == 0 {
		d.cur = nil
	}
}

// LoopHeader implements interp.Hooks: induction-variable reads/writes in
// init/post clauses are exempt (sibling loops legitimately share `i`).
func (d *PipePairDetector) LoopHeader(_ ast.LoopID, active bool) {
	if active {
		d.headers++
	} else if d.headers > 0 {
		d.headers--
	}
}

func (d *PipePairDetector) recording() *loopAccess {
	if d.cur == nil || d.headers > 0 {
		return nil
	}
	return d.cur
}

// VarRead implements interp.Hooks.
func (d *PipePairDetector) VarRead(name string, b *interp.Binding) {
	if la := d.recording(); la != nil && len(la.varReads) < d.setCap {
		la.varReads[b] = name
	}
}

// VarWrite implements interp.Hooks.
func (d *PipePairDetector) VarWrite(name string, b *interp.Binding) {
	if la := d.recording(); la != nil && len(la.varWrites) < d.setCap {
		la.varWrites[b] = name
	}
}

// ObjectNew implements interp.Hooks.
func (d *PipePairDetector) ObjectNew(o *value.Object) {
	if la := d.recording(); la != nil && len(la.fresh) < d.setCap {
		la.fresh[o] = true
	}
}

// PropRead implements interp.Hooks.
func (d *PipePairDetector) PropRead(o *value.Object, key string, via *interp.Binding) {
	la := d.recording()
	if la == nil {
		return
	}
	if len(la.objReads) < d.setCap {
		la.objReads[o] = true
	}
	d.noteName(o, via)
}

// PropWrite implements interp.Hooks.
func (d *PipePairDetector) PropWrite(o *value.Object, key string, via *interp.Binding) {
	la := d.recording()
	if la == nil {
		return
	}
	if len(la.objWrites) < d.setCap {
		la.objWrites[o] = true
	}
	d.noteName(o, via)
}

func (d *PipePairDetector) noteName(o *value.Object, via *interp.Binding) {
	if _, ok := d.objNames[o]; ok || len(d.objNames) >= d.setCap {
		return
	}
	if via != nil && via.Name != "" {
		d.objNames[o] = via.Name
	} else {
		d.objNames[o] = "<" + o.Class + ">"
	}
}

// Pairs returns every ordered (producer, consumer) pair of completed
// outermost loops where the consumer reads at least one array the
// producer wrote and *no other* dependence crosses the pair:
//
//   - no scalar flow: nothing the producer wrote (variable) is read or
//     rewritten by the consumer;
//   - no write conflicts: the consumer writes nothing the producer
//     touched (so the via arrays are read-only downstream);
//   - no non-array flow: every producer-written object the consumer
//     reads must be an array (structured objects do not cross
//     share-nothing stage workers).
//
// Loop order is first-execution order, matching the program text for
// straight-line hot paths.
func (d *PipePairDetector) Pairs() []PipePair {
	var out []PipePair
	for ai := 0; ai < len(d.order); ai++ {
		for bi := ai + 1; bi < len(d.order); bi++ {
			if via := d.pairVia(d.order[ai], d.order[bi]); len(via) > 0 {
				out = append(out, PipePair{
					Producer: d.order[ai].id,
					Consumer: d.order[bi].id,
					Via:      via,
				})
			}
		}
	}
	return out
}

// pairVia returns the via-array names when (a, b) is a clean
// produce → consume pair, nil otherwise.
func (d *PipePairDetector) pairVia(a, b *loopAccess) []string {
	via := make(map[*value.Object]bool)
	for o := range b.objReads {
		if a.objWrites[o] && o.IsArray() {
			via[o] = true
		}
	}
	if len(via) == 0 {
		return nil
	}
	// Scalar cross-dependence: a variable the producer wrote that the
	// consumer reads (flow) or writes (output dependence).
	for bnd := range b.varReads {
		if _, ok := a.varWrites[bnd]; ok {
			return nil
		}
	}
	for bnd := range b.varWrites {
		if _, ok := a.varWrites[bnd]; ok {
			return nil
		}
		if _, ok := a.varReads[bnd]; ok {
			return nil
		}
	}
	// Object conflicts: the consumer must not write anything the
	// producer touched, and every producer-written object it reads must
	// be a via array.
	for o := range b.objWrites {
		if a.objWrites[o] || a.objReads[o] {
			return nil
		}
	}
	for o := range b.objReads {
		if a.objWrites[o] && !via[o] {
			return nil
		}
	}
	names := make([]string, 0, len(via))
	for o := range via {
		name := d.objNames[o]
		if name == "" {
			name = "<" + o.Class + ">"
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
