// Package parallel demonstrates that the latent data parallelism
// JS-CERES finds is real: loops whose iterations the dependence analysis
// clears are executed across goroutines — one interpreter instance per
// worker, share-nothing, in the spirit of River Trail's map/reduce model
// that the paper recommends libraries adopt (§5.1).
//
// Concurrency/determinism contract: all four primitives (map, reduce,
// filter, scan) schedule through internal/sched — the adaptive
// work-stealing scheduler — instead of a static per-worker split. The
// chunk plan is a pure function of (n, tuning), so per-chunk results
// merge in chunk-index order with a bracketing that never depends on
// worker count or steal timing; values that cross between share-nothing
// interpreters (reduce partials, scan elements and offsets) must be
// primitive and are rejected otherwise. Parallel results must be
// bit-identical to sequential execution, which holds exactly when the
// kernel honors its contract (iteration-independent kernel/pred,
// associative pure combine) — the executor cross-checks it.
package parallel

import (
	"fmt"

	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/value"
	"repro/internal/sched"
)

// Kernel is a data-parallel loop body: JavaScript source that defines
// `function kernel(i) { ... return v; }` plus optional setup installing
// read-only inputs as globals.
//
// The source is parsed and compiled exactly once per process through
// the interpreter's content-addressed caches (interp.Load plus its unit
// cache), not once per Kernel: two Kernel values with the same Source
// share one read-only AST and one compiled unit across every worker
// interpreter. Spinning up a worker costs one interpreter allocation
// plus one program load, not a re-parse or re-compile.
type Kernel struct {
	// Source defines kernel(i) and any helpers/constants it needs.
	Source string
	// Setup installs host data (input arrays, parameters) into an
	// interpreter instance. It runs once per worker; the installed data
	// must be treated as read-only by the kernel.
	Setup func(in *interp.Interp) error
	// Seed for each worker's deterministic Math.random.
	Seed uint64
	// MaxSteps bounds each worker interpreter's evaluation steps
	// (0 = the interpreter default). Callers that execute untrusted or
	// fuzzed kernels set it so a kernel that diverges on the worker
	// faults (step-limit error) instead of hanging the pool.
	MaxSteps int64
	// TreeWalk opts workers out of compiled execution (interp.SetCompile),
	// falling back to the tree-walking evaluator. The observable behavior
	// is identical (the conformance suite proves it); the toggle exists
	// for the before/after bench ladder and for bisecting engine issues.
	TreeWalk bool
}

// program resolves Source through the process-wide parse cache.
func (k *Kernel) program() (*ast.Program, error) {
	prog, err := interp.Load(k.Source)
	if err != nil {
		return nil, fmt.Errorf("parallel: parse kernel: %w", err)
	}
	return prog, nil
}

// Result is the outcome of a map execution.
type Result struct {
	Values  []value.Value
	Workers int
	// Sched is the scheduling telemetry (chunk and steal counters) of
	// the parallel run; zero-valued for sequential execution.
	Sched sched.Stats
}

// Worker is one share-nothing kernel instance: a private interpreter with
// the kernel program loaded. Callers that need richer scheduling than
// MapParallel (e.g. internal/autopar's speculative executor, which installs
// a purity guard per worker) drive Workers directly.
type Worker struct {
	in *interp.Interp
	fn value.Value
}

// NewWorker builds a fresh share-nothing worker for the kernel.
func (k *Kernel) NewWorker() (*Worker, error) {
	prog, err := k.program()
	if err != nil {
		return nil, err
	}
	in := interp.New(interp.WithSeed(k.Seed), interp.WithMaxSteps(k.MaxSteps))
	if !k.TreeWalk {
		in.SetCompile(true)
	}
	if k.Setup != nil {
		if err := k.Setup(in); err != nil {
			return nil, fmt.Errorf("parallel: setup: %w", err)
		}
	}
	if err := in.Run(prog); err != nil {
		return nil, fmt.Errorf("parallel: load kernel: %w", err)
	}
	fn := in.Global("kernel")
	if !fn.IsCallable() {
		return nil, fmt.Errorf("parallel: kernel source does not define kernel(i)")
	}
	return &Worker{in: in, fn: fn}, nil
}

// Interp exposes the worker's private interpreter (for per-worker hooks).
func (w *Worker) Interp() *interp.Interp { return w.in }

// CallKernel invokes kernel(i) on the worker.
func (w *Worker) CallKernel(i int) (value.Value, error) {
	return w.in.SafeCall(w.fn, value.Undefined(), []value.Value{value.Int(i)})
}

// MapSequential runs kernel(i) for i in [0, n) on one interpreter.
func (k *Kernel) MapSequential(n int) (*Result, error) {
	w, err := k.NewWorker()
	if err != nil {
		return nil, err
	}
	out := make([]value.Value, n)
	for i := 0; i < n; i++ {
		v, err := w.CallKernel(i)
		if err != nil {
			return nil, fmt.Errorf("parallel: kernel(%d): %w", i, err)
		}
		out[i] = v
	}
	return &Result{Values: out, Workers: 1}, nil
}

// MapParallel runs kernel(i) for i in [0, n) across up to `workers`
// goroutines (0 = GOMAXPROCS), each with its own share-nothing
// interpreter, scheduled by the adaptive work-stealing scheduler.
// Results are written into index-addressed slots, so output is
// byte-identical at every worker count regardless of stealing.
func (k *Kernel) MapParallel(n, workers int) (*Result, error) {
	workers = clampWorkers(n, workers)
	if workers <= 1 {
		return k.MapSequential(n)
	}

	out := make([]value.Value, n)
	opts := sched.Options{Workers: workers, Seed: k.Seed}
	states := make([]*Worker, opts.MaxWorkers())
	stats, err := sched.Run(n, opts, func(w, ci, lo, hi int) error {
		ww, err := k.workerAt(states, w)
		if err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			v, err := ww.CallKernel(i)
			if err != nil {
				return fmt.Errorf("parallel: kernel(%d): %w", i, err)
			}
			out[i] = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Result{Values: out, Workers: stats.Workers, Sched: stats}, nil
}

// workerAt lazily builds the share-nothing worker for pool slot w. No
// locking: sched runs each worker index on a single goroutine.
func (k *Kernel) workerAt(states []*Worker, w int) (*Worker, error) {
	if states[w] == nil {
		ww, err := k.NewWorker()
		if err != nil {
			return nil, err
		}
		states[w] = ww
	}
	return states[w], nil
}

// Equal reports whether two results hold strictly equal values.
func Equal(a, b *Result) bool {
	if len(a.Values) != len(b.Values) {
		return false
	}
	for i := range a.Values {
		if !value.StrictEquals(a.Values[i], b.Values[i]) {
			return false
		}
	}
	return true
}

// ReduceNumbers folds numeric results with a Go-side reduction, the
// pattern River Trail exposes as reduce().
func ReduceNumbers(r *Result, init float64, f func(acc, x float64) float64) float64 {
	acc := init
	for _, v := range r.Values {
		acc = f(acc, v.ToNumber())
	}
	return acc
}
