package parallel

// Work-stealing scheduler integration: a deliberately skewed kernel —
// per-element cost concentrated in the low-index quarter, the shape of
// the imbalanced raytracer variant — must still produce byte-identical
// results at every worker count, and the pool must actually steal.

import (
	"testing"

	"repro/internal/js/value"
)

// skewedKernel: indices below 256 spin ~100× longer than the rest.
const skewedKernel = `
function kernel(i) {
  var spin = i < 256 ? 300 : 3;
  var acc = 0;
  for (var j = 0; j < spin; j++) {
    acc += (i * 31 + j * j) % 97;
  }
  return acc;
}
function combine(a, b) { return a + b; }
function pred(x, i) { return x % 2 === 0; }
`

const skewedN = 1024

// TestSkewedByteIdenticalAcrossWorkers: map, reduce, filter and scan on
// the skewed kernel agree exactly with the sequential run at 1/2/4/8
// workers — stealing moves chunks between workers, never values between
// slots. (The kernel's values are integers, so the combine is exactly
// associative and sequential equality is the right bar.)
func TestSkewedByteIdenticalAcrossWorkers(t *testing.T) {
	k := &Kernel{Source: skewedKernel}
	seqMap, err := k.MapSequential(skewedN)
	if err != nil {
		t.Fatal(err)
	}
	seqRed, err := k.ReduceSequential(skewedN)
	if err != nil {
		t.Fatal(err)
	}
	seqFil, err := k.FilterSequential(skewedN)
	if err != nil {
		t.Fatal(err)
	}
	seqScan, err := k.ScanSequential(skewedN)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		m, err := k.MapParallel(skewedN, workers)
		if err != nil {
			t.Fatalf("map workers=%d: %v", workers, err)
		}
		if !Equal(seqMap, m) {
			t.Errorf("map workers=%d: differs from sequential", workers)
		}
		r, err := k.ReduceParallel(skewedN, workers)
		if err != nil {
			t.Fatalf("reduce workers=%d: %v", workers, err)
		}
		if !value.StrictEquals(seqRed, r) {
			t.Errorf("reduce workers=%d: %v != sequential %v", workers, r, seqRed)
		}
		f, err := k.FilterParallel(skewedN, workers)
		if err != nil {
			t.Fatalf("filter workers=%d: %v", workers, err)
		}
		if !EqualFilter(seqFil, f) {
			t.Errorf("filter workers=%d: differs from sequential", workers)
		}
		s, err := k.ScanParallel(skewedN, workers)
		if err != nil {
			t.Fatalf("scan workers=%d: %v", workers, err)
		}
		if !Equal(seqScan, s) {
			t.Errorf("scan workers=%d: differs from sequential", workers)
		}
	}
}

// TestSkewedMapSteals: the heavy head pins its owner, so a 4-worker map
// over the skewed kernel must rebalance through steals.
func TestSkewedMapSteals(t *testing.T) {
	k := &Kernel{Source: skewedKernel}
	res, err := k.MapParallel(skewedN, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sched.Workers < 2 {
		t.Fatalf("pool resolved to %d workers", res.Sched.Workers)
	}
	if res.Sched.Chunks < res.Sched.Workers {
		t.Errorf("plan too coarse to steal from: %+v", res.Sched)
	}
	if res.Sched.Steals == 0 {
		t.Errorf("no steals on a skewed kernel: %+v", res.Sched)
	}
}

// TestReduceBracketingFixedAcrossWorkerCounts: with a deliberately
// non-associative combine, parallel results cannot match the sequential
// left fold — but they must match *each other* at every worker count,
// because the chunk plan (and so the merge bracketing) is a pure
// function of n. This is the scheduler's deterministic-merge contract,
// stronger than the old static split (whose bracketing moved with the
// worker count).
func TestReduceBracketingFixedAcrossWorkerCounts(t *testing.T) {
	k := &Kernel{Source: `
function kernel(i) { return i + 0.1; }
function combine(a, b) { return a * 0.999 + b; }
`}
	base, err := k.ReduceParallel(512, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 4, 8} {
		v, err := k.ReduceParallel(512, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !value.StrictEquals(base, v) {
			t.Errorf("workers=%d: %v != workers=2 %v (bracketing moved)", workers, v, base)
		}
	}
}
