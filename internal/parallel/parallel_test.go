package parallel

import (
	"testing"
	"testing/quick"

	"repro/internal/js/interp"
	"repro/internal/js/value"
)

const squareKernel = `
function kernel(i) {
  return i * i + offset;
}
`

func squareSetup(off float64) func(in *interp.Interp) error {
	return func(in *interp.Interp) error {
		in.SetGlobal("offset", value.Number(off))
		return nil
	}
}

func TestMapSequential(t *testing.T) {
	k := &Kernel{Source: squareKernel, Setup: squareSetup(3)}
	r, err := k.MapSequential(10)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range r.Values {
		if want := float64(i*i + 3); v.ToNumber() != want {
			t.Errorf("kernel(%d) = %v, want %v", i, v.ToNumber(), want)
		}
	}
}

func TestParallelEqualsSequential(t *testing.T) {
	k := &Kernel{Source: squareKernel, Setup: squareSetup(7)}
	seq, err := k.MapSequential(500)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 4, 8} {
		par, err := k.MapParallel(500, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(seq, par) {
			t.Errorf("workers=%d: parallel result differs from sequential", workers)
		}
	}
}

func TestParallelEqualsSequentialHeavyKernel(t *testing.T) {
	// A convolution-style kernel over a shared read-only input: the shape
	// the analysis clears as "easy" (disjoint writes, read-only input).
	src := `
function kernel(i) {
  var acc = 0;
  for (var j = -2; j <= 2; j++) {
    var idx = i + j;
    if (idx < 0) { idx = 0; }
    if (idx >= input.length) { idx = input.length - 1; }
    acc += input[idx] * (3 - (j < 0 ? -j : j));
  }
  return acc / 9;
}
`
	setup := func(in *interp.Interp) error {
		elems := make([]value.Value, 256)
		for i := range elems {
			elems[i] = value.Number(float64(i%17) * 1.5)
		}
		in.SetGlobal("input", value.ObjectVal(in.NewArray(elems...)))
		return nil
	}
	k := &Kernel{Source: src, Setup: setup}
	seq, err := k.MapSequential(256)
	if err != nil {
		t.Fatal(err)
	}
	par, err := k.MapParallel(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(seq, par) {
		t.Error("heavy kernel: parallel differs from sequential")
	}
}

func TestMapParallelPropertyEquivalence(t *testing.T) {
	// Property: for arbitrary small n and workers, parallel == sequential.
	k := &Kernel{Source: squareKernel, Setup: squareSetup(1)}
	f := func(n, w uint8) bool {
		nn := int(n%64) + 1
		ww := int(w%6) + 1
		seq, err := k.MapSequential(nn)
		if err != nil {
			return false
		}
		par, err := k.MapParallel(nn, ww)
		if err != nil {
			return false
		}
		return Equal(seq, par)
	}
	cfg := &quick.Config{MaxCount: 12} // each case spawns interpreters
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestKernelErrors(t *testing.T) {
	if _, err := (&Kernel{Source: "var x = 1;"}).MapSequential(1); err == nil {
		t.Error("missing kernel function should fail")
	}
	if _, err := (&Kernel{Source: "function kernel(i) { return nope(); }"}).MapSequential(1); err == nil {
		t.Error("throwing kernel should fail")
	}
	if _, err := (&Kernel{Source: "syntax error ("}).MapSequential(1); err == nil {
		t.Error("unparsable kernel should fail")
	}
}

func TestReduceNumbers(t *testing.T) {
	k := &Kernel{Source: "function kernel(i) { return i; }"}
	r, err := k.MapParallel(100, 4)
	if err != nil {
		t.Fatal(err)
	}
	sum := ReduceNumbers(r, 0, func(a, x float64) float64 { return a + x })
	if sum != 4950 {
		t.Errorf("sum = %v, want 4950", sum)
	}
}

func TestWorkersClamped(t *testing.T) {
	k := &Kernel{Source: "function kernel(i) { return i; }"}
	r, err := k.MapParallel(3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Values) != 3 {
		t.Errorf("len = %d, want 3", len(r.Values))
	}
}
