package parallel

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/js/interp"
	"repro/internal/js/value"
)

// sumKernel: integer-exact values so the fold is associative and the
// bit-identical cross-check is meaningful.
const sumKernel = `
function kernel(i) { return (i * 31 + 7) % 101; }
function combine(a, b) { return a + b; }
function pred(x, i) { return x % 3 === 0; }
`

func TestReduceCrossCheck(t *testing.T) {
	k := &Kernel{Source: sumKernel}
	seq, err := k.ReduceSequential(500)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i := 0; i < 500; i++ {
		want += float64((i*31 + 7) % 101)
	}
	if seq.ToNumber() != want {
		t.Fatalf("sequential reduce = %v, want %v", seq.ToNumber(), want)
	}
	for _, workers := range []int{2, 3, 4, 8} {
		par, err := k.ReduceParallel(500, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !value.StrictEquals(seq, par) {
			t.Errorf("workers=%d: parallel reduce %v != sequential %v", workers, par.ToNumber(), seq.ToNumber())
		}
	}
}

func TestReduceMaxCrossCheck(t *testing.T) {
	// A non-commutative-looking but associative combine: max.
	k := &Kernel{Source: `
function kernel(i) { return (i * 37) % 251; }
function combine(a, b) { return a > b ? a : b; }
`}
	seq, err := k.ReduceSequential(300)
	if err != nil {
		t.Fatal(err)
	}
	par, err := k.ReduceParallel(300, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !value.StrictEquals(seq, par) {
		t.Errorf("max reduce: parallel %v != sequential %v", par.ToNumber(), seq.ToNumber())
	}
}

func TestReduceEmptyAndSingle(t *testing.T) {
	k := &Kernel{Source: sumKernel}
	v, err := k.ReduceSequential(0)
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsUndefined() {
		t.Errorf("reduce of empty range = %v, want undefined", v)
	}
	v, err = k.ReduceParallel(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if v.ToNumber() != 7 {
		t.Errorf("reduce of single element = %v, want 7", v.ToNumber())
	}
}

func TestReduceRequiresCombine(t *testing.T) {
	k := &Kernel{Source: "function kernel(i) { return i; }"}
	if _, err := k.ReduceSequential(4); err == nil || !strings.Contains(err.Error(), "combine") {
		t.Errorf("reduce without combine: err = %v, want combine complaint", err)
	}
	if _, err := k.ScanParallel(4, 2); err == nil || !strings.Contains(err.Error(), "combine") {
		t.Errorf("scan without combine: err = %v, want combine complaint", err)
	}
	if _, err := k.FilterParallel(4, 2); err == nil || !strings.Contains(err.Error(), "pred") {
		t.Errorf("filter without pred: err = %v, want pred complaint", err)
	}
}

func TestReduceRejectsObjectPartials(t *testing.T) {
	// combine returning an object would alias state across interpreters;
	// the parallel path must refuse rather than silently share.
	k := &Kernel{Source: `
function kernel(i) { return { v: i }; }
function combine(a, b) { return { v: a.v + b.v }; }
`}
	if _, err := k.ReduceParallel(64, 4); err == nil || !strings.Contains(err.Error(), "primitive") {
		t.Errorf("object partials: err = %v, want primitive complaint", err)
	}
}

func TestFilterCrossCheck(t *testing.T) {
	k := &Kernel{Source: sumKernel}
	seq, err := k.FilterSequential(500)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Indices) == 0 || len(seq.Indices) == 500 {
		t.Fatalf("degenerate filter keep count %d", len(seq.Indices))
	}
	for j, i := range seq.Indices {
		if int(seq.Values[j].ToNumber())%3 != 0 {
			t.Errorf("kept value at index %d fails pred", i)
		}
	}
	for _, workers := range []int{2, 3, 4, 8} {
		par, err := k.FilterParallel(500, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !EqualFilter(seq, par) {
			t.Errorf("workers=%d: parallel filter differs from sequential", workers)
		}
	}
}

func TestScanCrossCheck(t *testing.T) {
	k := &Kernel{Source: sumKernel}
	seq, err := k.ScanSequential(500)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check the prefix property.
	var run float64
	for i := 0; i < 500; i++ {
		run += float64((i*31 + 7) % 101)
		if seq.Values[i].ToNumber() != run {
			t.Fatalf("scan[%d] = %v, want %v", i, seq.Values[i].ToNumber(), run)
		}
	}
	for _, workers := range []int{2, 3, 4, 8} {
		par, err := k.ScanParallel(500, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !Equal(seq, par) {
			t.Errorf("workers=%d: parallel scan differs from sequential", workers)
		}
	}
}

func TestScanPropertyEquivalence(t *testing.T) {
	// Property: arbitrary small n and workers agree with sequential.
	k := &Kernel{Source: sumKernel}
	f := func(n, w uint8) bool {
		nn := int(n%48) + 1
		ww := int(w%6) + 1
		seq, err := k.ScanSequential(nn)
		if err != nil {
			return false
		}
		par, err := k.ScanParallel(nn, ww)
		if err != nil {
			return false
		}
		return Equal(seq, par)
	}
	cfg := &quick.Config{MaxCount: 10} // each case spawns interpreters
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPrimitivesWithSetup(t *testing.T) {
	// Reduce over a shared read-only input installed per worker — the
	// dot-product shape River Trail's reduce is built for.
	src := `
function kernel(i) { return a[i] * b[i]; }
function combine(x, y) { return x + y; }
`
	setup := func(in *interp.Interp) error {
		n := 200
		av := make([]value.Value, n)
		bv := make([]value.Value, n)
		for i := 0; i < n; i++ {
			av[i] = value.Int(i % 13)
			bv[i] = value.Int(i % 7)
		}
		in.SetGlobal("a", value.ObjectVal(in.NewArray(av...)))
		in.SetGlobal("b", value.ObjectVal(in.NewArray(bv...)))
		return nil
	}
	k := &Kernel{Source: src, Setup: setup}
	seq, err := k.ReduceSequential(200)
	if err != nil {
		t.Fatal(err)
	}
	par, err := k.ReduceParallel(200, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !value.StrictEquals(seq, par) {
		t.Errorf("dot product: parallel %v != sequential %v", par.ToNumber(), seq.ToNumber())
	}
}
