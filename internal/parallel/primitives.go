package parallel

// This file completes the River Trail primitive set the paper recommends
// (§5.1): beyond map, the reduce, filter and scan combinators, each with
// a sequential counterpart for the package's bit-identical cross-check.
//
// Conventions extending Kernel:
//
//   - reduce/scan additionally require Source to define combine(a, b),
//     an associative, pure fold of two kernel results;
//   - filter additionally requires pred(x, i), a pure predicate over a
//     kernel result and its index.
//
// Scheduling goes through internal/sched: [0, n) decomposes into the
// scheduler's geometric chunk plan — a pure function of (n, tuning),
// independent of worker count — and chunks are executed by a
// work-stealing pool of share-nothing interpreters. Per-chunk partials
// merge in chunk-index order, so the merge bracketing is identical at
// every worker count. Merging (and, under stealing, any scan element)
// re-invokes combine with values produced on *other* workers'
// interpreters, so those values must be primitives (number, string,
// bool); an object crossing interpreters would alias mutable state
// between workers, and the primitives reject it with an error instead.
//
// Bit-identical equivalence with the sequential counterpart holds
// exactly when the kernel functions honor the contract: kernel and pred
// iteration-independent, combine pure and associative. (Floating-point
// combines that are not associative — e.g. summing values with wildly
// different magnitudes — will be caught by the cross-check, which is the
// point: the check is the safety net the paper's §5.3 asks for.)

import (
	"fmt"
	"runtime"

	"repro/internal/js/value"
	"repro/internal/sched"
)

// FilterResult is the outcome of a filter execution: the kept kernel
// results and their original indices, in index order.
type FilterResult struct {
	Indices []int
	Values  []value.Value
	Workers int
	// Sched is the scheduling telemetry of the parallel run;
	// zero-valued for sequential execution.
	Sched sched.Stats
}

// Callable resolves a function the kernel source must define.
func (w *Worker) Callable(name string) (value.Value, error) {
	fn := w.in.Global(name)
	if !fn.IsCallable() {
		return value.Undefined(), fmt.Errorf("parallel: kernel source does not define %s", name)
	}
	return fn, nil
}

// Call invokes a kernel-defined function on the worker's interpreter.
func (w *Worker) Call(fn value.Value, args ...value.Value) (value.Value, error) {
	return w.in.SafeCall(fn, value.Undefined(), args)
}

// clampWorkers resolves the worker count against n.
func clampWorkers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// foldState is one worker's interpreter plus its resolved combine
// callable — the per-worker state of reduce and scan.
type foldState struct {
	w       *Worker
	combine value.Value
}

// foldStateAt lazily builds the fold worker for pool slot w. No
// locking: sched runs each worker index on a single goroutine.
func (k *Kernel) foldStateAt(states []*foldState, w int) (*foldState, error) {
	if states[w] == nil {
		ww, err := k.NewWorker()
		if err != nil {
			return nil, err
		}
		combine, err := ww.Callable("combine")
		if err != nil {
			return nil, err
		}
		states[w] = &foldState{w: ww, combine: combine}
	}
	return states[w], nil
}

// mergeState picks an interpreter for the chunk-order merge: any
// already-built fold worker serves (they are share-nothing equals), a
// fresh one is built if the pool never materialized.
func (k *Kernel) mergeState(states []*foldState) (*foldState, error) {
	for _, fs := range states {
		if fs != nil {
			return fs, nil
		}
	}
	one := make([]*foldState, 1)
	return k.foldStateAt(one, 0)
}

// crossable rejects values that would carry mutable state between
// share-nothing interpreters.
func crossable(v value.Value, what string) error {
	if v.IsObject() {
		return fmt.Errorf("parallel: %s is an object; reduce/scan values must be primitive to cross workers", what)
	}
	return nil
}

// ---- reduce ----

// ReduceSequential left-folds kernel(0..n) with combine on one
// interpreter: combine(combine(kernel(0), kernel(1)), ...). An empty
// range reduces to undefined.
func (k *Kernel) ReduceSequential(n int) (value.Value, error) {
	w, err := k.NewWorker()
	if err != nil {
		return value.Undefined(), err
	}
	combine, err := w.Callable("combine")
	if err != nil {
		return value.Undefined(), err
	}
	return reduceChunk(w, combine, 0, n)
}

// reduceChunk folds [lo, hi) on one worker.
func reduceChunk(w *Worker, combine value.Value, lo, hi int) (value.Value, error) {
	acc := value.Undefined()
	for i := lo; i < hi; i++ {
		v, err := w.Call(w.fn, value.Int(i))
		if err != nil {
			return value.Undefined(), fmt.Errorf("parallel: kernel(%d): %w", i, err)
		}
		if i == lo {
			acc = v
			continue
		}
		acc, err = w.Call(combine, acc, v)
		if err != nil {
			return value.Undefined(), fmt.Errorf("parallel: combine at %d: %w", i, err)
		}
	}
	return acc, nil
}

// ReduceParallel folds kernel(0..n) across up to `workers` goroutines
// (0 = GOMAXPROCS) under the work-stealing scheduler: each plan chunk
// folds on whichever worker claims it, then the chunk partials fold in
// chunk-index order on one interpreter. The chunk plan — and therefore
// the merge bracketing — is a pure function of n, so the result is
// byte-identical at every worker count; it equals ReduceSequential
// exactly when combine is associative and pure.
func (k *Kernel) ReduceParallel(n, workers int) (value.Value, error) {
	workers = clampWorkers(n, workers)
	if workers <= 1 {
		return k.ReduceSequential(n)
	}

	opts := sched.Options{Workers: workers, Seed: k.Seed}
	plan := sched.Plan(n, opts)
	partials := make([]value.Value, len(plan))
	states := make([]*foldState, opts.MaxWorkers())
	if _, err := sched.RunPlan(plan, opts, func(w, ci, lo, hi int) error {
		fs, err := k.foldStateAt(states, w)
		if err != nil {
			return err
		}
		v, err := reduceChunk(fs.w, fs.combine, lo, hi)
		if err != nil {
			return err
		}
		if err := crossable(v, fmt.Sprintf("chunk %d partial", ci)); err != nil {
			return err
		}
		partials[ci] = v
		return nil
	}); err != nil {
		return value.Undefined(), err
	}

	// Fold chunk partials in plan order on one interpreter.
	fs, err := k.mergeState(states)
	if err != nil {
		return value.Undefined(), err
	}
	acc := partials[0]
	for ci := 1; ci < len(partials); ci++ {
		acc, err = fs.w.Call(fs.combine, acc, partials[ci])
		if err != nil {
			return value.Undefined(), fmt.Errorf("parallel: combine partial %d: %w", ci, err)
		}
	}
	return acc, nil
}

// ---- filter ----

// FilterSequential keeps kernel(i) results for which pred(x, i) is
// truthy, on one interpreter.
func (k *Kernel) FilterSequential(n int) (*FilterResult, error) {
	w, err := k.NewWorker()
	if err != nil {
		return nil, err
	}
	pred, err := w.Callable("pred")
	if err != nil {
		return nil, err
	}
	res := &FilterResult{Workers: 1}
	return res, filterChunk(w, pred, 0, n, res)
}

// filterChunk appends [lo, hi)'s kept elements to res.
func filterChunk(w *Worker, pred value.Value, lo, hi int, res *FilterResult) error {
	for i := lo; i < hi; i++ {
		v, err := w.Call(w.fn, value.Int(i))
		if err != nil {
			return fmt.Errorf("parallel: kernel(%d): %w", i, err)
		}
		keep, err := w.Call(pred, v, value.Int(i))
		if err != nil {
			return fmt.Errorf("parallel: pred(%d): %w", i, err)
		}
		if keep.ToBool() {
			res.Indices = append(res.Indices, i)
			res.Values = append(res.Values, v)
		}
	}
	return nil
}

// FilterParallel filters across up to `workers` goroutines
// (0 = GOMAXPROCS) under the work-stealing scheduler; per-chunk keeps
// concatenate in chunk-index order, so the result is index-ordered and
// identical to FilterSequential for pure predicates, at every worker
// count.
func (k *Kernel) FilterParallel(n, workers int) (*FilterResult, error) {
	workers = clampWorkers(n, workers)
	if workers <= 1 {
		return k.FilterSequential(n)
	}

	type predState struct {
		w    *Worker
		pred value.Value
	}
	opts := sched.Options{Workers: workers, Seed: k.Seed}
	plan := sched.Plan(n, opts)
	locals := make([]*FilterResult, len(plan))
	states := make([]*predState, opts.MaxWorkers())
	stats, err := sched.RunPlan(plan, opts, func(w, ci, lo, hi int) error {
		if states[w] == nil {
			ww, err := k.NewWorker()
			if err != nil {
				return err
			}
			pred, err := ww.Callable("pred")
			if err != nil {
				return err
			}
			states[w] = &predState{w: ww, pred: pred}
		}
		locals[ci] = &FilterResult{}
		return filterChunk(states[w].w, states[w].pred, lo, hi, locals[ci])
	})
	if err != nil {
		return nil, err
	}

	res := &FilterResult{Workers: stats.Workers, Sched: stats}
	for _, l := range locals {
		res.Indices = append(res.Indices, l.Indices...)
		res.Values = append(res.Values, l.Values...)
	}
	return res, nil
}

// EqualFilter reports whether two filter results kept the same indices
// with strictly equal values.
func EqualFilter(a, b *FilterResult) bool {
	if len(a.Indices) != len(b.Indices) {
		return false
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] || !value.StrictEquals(a.Values[i], b.Values[i]) {
			return false
		}
	}
	return true
}

// ---- scan ----

// ScanSequential computes the inclusive prefix fold on one interpreter:
// out[0] = kernel(0), out[i] = combine(out[i-1], kernel(i)).
func (k *Kernel) ScanSequential(n int) (*Result, error) {
	w, err := k.NewWorker()
	if err != nil {
		return nil, err
	}
	combine, err := w.Callable("combine")
	if err != nil {
		return nil, err
	}
	out := make([]value.Value, n)
	if err := scanChunkLocal(w, combine, 0, n, out); err != nil {
		return nil, err
	}
	return &Result{Values: out, Workers: 1}, nil
}

// scanChunkLocal fills out[lo:hi] with the inclusive scan of the chunk's
// own kernel values (no cross-chunk offset).
func scanChunkLocal(w *Worker, combine value.Value, lo, hi int, out []value.Value) error {
	for i := lo; i < hi; i++ {
		v, err := w.Call(w.fn, value.Int(i))
		if err != nil {
			return fmt.Errorf("parallel: kernel(%d): %w", i, err)
		}
		if i == lo {
			out[i] = v
			continue
		}
		out[i], err = w.Call(combine, out[i-1], v)
		if err != nil {
			return fmt.Errorf("parallel: combine at %d: %w", i, err)
		}
	}
	return nil
}

// ScanParallel computes the inclusive prefix fold with the classic tiled
// three-phase algorithm, both parallel phases under the work-stealing
// scheduler: (1) each plan chunk scans locally on whichever worker
// claims it, (2) chunk totals fold sequentially into per-chunk offsets,
// (3) each tail chunk combines its offset into its local elements. The
// plan is a pure function of n, so the offset bracketing is identical at
// every worker count; because stealing may run phases of the same chunk
// on different interpreters, every scanned value must be primitive
// (enforced). Equals ScanSequential exactly when combine is associative
// and pure.
func (k *Kernel) ScanParallel(n, workers int) (*Result, error) {
	workers = clampWorkers(n, workers)
	if workers <= 1 {
		return k.ScanSequential(n)
	}

	out := make([]value.Value, n)
	opts := sched.Options{Workers: workers, Seed: k.Seed}
	plan := sched.Plan(n, opts)
	states := make([]*foldState, opts.MaxWorkers())

	// Phase 1: local inclusive scans, chunk by chunk.
	stats, err := sched.RunPlan(plan, opts, func(w, ci, lo, hi int) error {
		fs, err := k.foldStateAt(states, w)
		if err != nil {
			return err
		}
		if err := scanChunkLocal(fs.w, fs.combine, lo, hi, out); err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			if err := crossable(out[i], fmt.Sprintf("scan value at %d", i)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: per-chunk offsets — the left fold of preceding chunk
	// totals (each chunk's total is its last local-scan element),
	// bracketed by the fixed plan.
	ms, err := k.mergeState(states)
	if err != nil {
		return nil, err
	}
	offsets := make([]value.Value, len(plan))
	acc := value.Undefined()
	for ci := 1; ci < len(plan); ci++ {
		total := out[plan[ci-1].Hi-1]
		if ci == 1 {
			acc = total
		} else {
			acc, err = ms.w.Call(ms.combine, acc, total)
			if err != nil {
				return nil, fmt.Errorf("parallel: combine offsets: %w", err)
			}
			if err := crossable(acc, fmt.Sprintf("chunk %d offset", ci)); err != nil {
				return nil, err
			}
		}
		offsets[ci] = acc
	}

	// Phase 3: apply offsets to every tail chunk (plan[1:], so the body's
	// chunk index is shifted by one).
	if len(plan) > 1 {
		s3, err := sched.RunPlan(plan[1:], opts, func(w, ci, lo, hi int) error {
			fs, err := k.foldStateAt(states, w)
			if err != nil {
				return err
			}
			offset := offsets[ci+1]
			for i := lo; i < hi; i++ {
				v, err := fs.w.Call(fs.combine, offset, out[i])
				if err != nil {
					return fmt.Errorf("parallel: combine offset at %d: %w", i, err)
				}
				out[i] = v
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		// Whole-run telemetry: steal counters accumulate across both
		// parallel phases; Chunks stays the decomposition size (phase 3
		// re-schedules the same tail chunks, it does not add new ones).
		stats.Steals += s3.Steals
		stats.StolenChunks += s3.StolenChunks
	}
	return &Result{Values: out, Workers: stats.Workers, Sched: stats}, nil
}
