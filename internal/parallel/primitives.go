package parallel

// This file completes the River Trail primitive set the paper recommends
// (§5.1): beyond map, the reduce, filter and scan combinators, each with
// a sequential counterpart for the package's bit-identical cross-check.
//
// Conventions extending Kernel:
//
//   - reduce/scan additionally require Source to define combine(a, b),
//     an associative, pure fold of two kernel results;
//   - filter additionally requires pred(x, i), a pure predicate over a
//     kernel result and its index.
//
// Scheduling is chunked: [0, n) splits into one contiguous chunk per
// worker, each worker folds/scans its chunk on its own share-nothing
// interpreter, and the per-chunk partials are merged in chunk order.
// Merging re-invokes combine with values produced on *other* workers'
// interpreters, so those values must be primitives (number, string,
// bool); an object crossing interpreters would alias mutable state
// between workers, and the primitives reject it with an error instead.
//
// Bit-identical equivalence with the sequential counterpart holds
// exactly when the kernel functions honor the contract: kernel and pred
// iteration-independent, combine pure and associative. (Floating-point
// combines that are not associative — e.g. summing values with wildly
// different magnitudes — will be caught by the cross-check, which is the
// point: the check is the safety net the paper's §5.3 asks for.)

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/js/value"
)

// FilterResult is the outcome of a filter execution: the kept kernel
// results and their original indices, in index order.
type FilterResult struct {
	Indices []int
	Values  []value.Value
	Workers int
}

// Callable resolves a function the kernel source must define.
func (w *Worker) Callable(name string) (value.Value, error) {
	fn := w.in.Global(name)
	if !fn.IsCallable() {
		return value.Undefined(), fmt.Errorf("parallel: kernel source does not define %s", name)
	}
	return fn, nil
}

// Call invokes a kernel-defined function on the worker's interpreter.
func (w *Worker) Call(fn value.Value, args ...value.Value) (value.Value, error) {
	return w.in.SafeCall(fn, value.Undefined(), args)
}

// clampWorkers resolves the worker count against n.
func clampWorkers(n, workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Chunk returns worker wi's contiguous index range [lo, hi) under the
// package's chunked schedule: [0, n) splits into one contiguous run per
// worker, balanced to within one element.
func Chunk(n, workers, wi int) (lo, hi int) {
	return wi * n / workers, (wi + 1) * n / workers
}

// crossable rejects values that would carry mutable state between
// share-nothing interpreters.
func crossable(v value.Value, what string) error {
	if v.IsObject() {
		return fmt.Errorf("parallel: %s is an object; reduce/scan values must be primitive to cross workers", what)
	}
	return nil
}

// ---- reduce ----

// ReduceSequential left-folds kernel(0..n) with combine on one
// interpreter: combine(combine(kernel(0), kernel(1)), ...). An empty
// range reduces to undefined.
func (k *Kernel) ReduceSequential(n int) (value.Value, error) {
	w, err := k.NewWorker()
	if err != nil {
		return value.Undefined(), err
	}
	combine, err := w.Callable("combine")
	if err != nil {
		return value.Undefined(), err
	}
	return reduceChunk(w, combine, 0, n)
}

// reduceChunk folds [lo, hi) on one worker.
func reduceChunk(w *Worker, combine value.Value, lo, hi int) (value.Value, error) {
	acc := value.Undefined()
	for i := lo; i < hi; i++ {
		v, err := w.Call(w.fn, value.Int(i))
		if err != nil {
			return value.Undefined(), fmt.Errorf("parallel: kernel(%d): %w", i, err)
		}
		if i == lo {
			acc = v
			continue
		}
		acc, err = w.Call(combine, acc, v)
		if err != nil {
			return value.Undefined(), fmt.Errorf("parallel: combine at %d: %w", i, err)
		}
	}
	return acc, nil
}

// ReduceParallel folds kernel(0..n) across `workers` goroutines
// (0 = GOMAXPROCS): each worker folds its chunk, then the chunk partials
// are folded in chunk order. Equals ReduceSequential exactly when
// combine is associative and pure.
func (k *Kernel) ReduceParallel(n, workers int) (value.Value, error) {
	workers = clampWorkers(n, workers)
	if workers <= 1 {
		return k.ReduceSequential(n)
	}

	partials := make([]value.Value, workers)
	states := make([]*Worker, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w, err := k.NewWorker()
			if err != nil {
				errs[wi] = err
				return
			}
			combine, err := w.Callable("combine")
			if err != nil {
				errs[wi] = err
				return
			}
			states[wi] = w
			lo, hi := Chunk(n, workers, wi)
			partials[wi], errs[wi] = reduceChunk(w, combine, lo, hi)
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return value.Undefined(), err
		}
	}

	// Fold chunk partials in order on worker 0's interpreter.
	w := states[0]
	combine, err := w.Callable("combine")
	if err != nil {
		return value.Undefined(), err
	}
	acc := partials[0]
	for wi := 1; wi < workers; wi++ {
		if err := crossable(partials[wi], fmt.Sprintf("chunk %d partial", wi)); err != nil {
			return value.Undefined(), err
		}
		acc, err = w.Call(combine, acc, partials[wi])
		if err != nil {
			return value.Undefined(), fmt.Errorf("parallel: combine partial %d: %w", wi, err)
		}
	}
	return acc, nil
}

// ---- filter ----

// FilterSequential keeps kernel(i) results for which pred(x, i) is
// truthy, on one interpreter.
func (k *Kernel) FilterSequential(n int) (*FilterResult, error) {
	w, err := k.NewWorker()
	if err != nil {
		return nil, err
	}
	pred, err := w.Callable("pred")
	if err != nil {
		return nil, err
	}
	res := &FilterResult{Workers: 1}
	return res, filterChunk(w, pred, 0, n, res)
}

// filterChunk appends [lo, hi)'s kept elements to res.
func filterChunk(w *Worker, pred value.Value, lo, hi int, res *FilterResult) error {
	for i := lo; i < hi; i++ {
		v, err := w.Call(w.fn, value.Int(i))
		if err != nil {
			return fmt.Errorf("parallel: kernel(%d): %w", i, err)
		}
		keep, err := w.Call(pred, v, value.Int(i))
		if err != nil {
			return fmt.Errorf("parallel: pred(%d): %w", i, err)
		}
		if keep.ToBool() {
			res.Indices = append(res.Indices, i)
			res.Values = append(res.Values, v)
		}
	}
	return nil
}

// FilterParallel filters across `workers` goroutines (0 = GOMAXPROCS);
// per-chunk keeps concatenate in chunk order, so the result is
// index-ordered and identical to FilterSequential for pure predicates.
func (k *Kernel) FilterParallel(n, workers int) (*FilterResult, error) {
	workers = clampWorkers(n, workers)
	if workers <= 1 {
		return k.FilterSequential(n)
	}

	locals := make([]*FilterResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w, err := k.NewWorker()
			if err != nil {
				errs[wi] = err
				return
			}
			pred, err := w.Callable("pred")
			if err != nil {
				errs[wi] = err
				return
			}
			lo, hi := Chunk(n, workers, wi)
			locals[wi] = &FilterResult{}
			errs[wi] = filterChunk(w, pred, lo, hi, locals[wi])
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &FilterResult{Workers: workers}
	for _, l := range locals {
		res.Indices = append(res.Indices, l.Indices...)
		res.Values = append(res.Values, l.Values...)
	}
	return res, nil
}

// EqualFilter reports whether two filter results kept the same indices
// with strictly equal values.
func EqualFilter(a, b *FilterResult) bool {
	if len(a.Indices) != len(b.Indices) {
		return false
	}
	for i := range a.Indices {
		if a.Indices[i] != b.Indices[i] || !value.StrictEquals(a.Values[i], b.Values[i]) {
			return false
		}
	}
	return true
}

// ---- scan ----

// ScanSequential computes the inclusive prefix fold on one interpreter:
// out[0] = kernel(0), out[i] = combine(out[i-1], kernel(i)).
func (k *Kernel) ScanSequential(n int) (*Result, error) {
	w, err := k.NewWorker()
	if err != nil {
		return nil, err
	}
	combine, err := w.Callable("combine")
	if err != nil {
		return nil, err
	}
	out := make([]value.Value, n)
	if err := scanChunkLocal(w, combine, 0, n, out); err != nil {
		return nil, err
	}
	return &Result{Values: out, Workers: 1}, nil
}

// scanChunkLocal fills out[lo:hi] with the inclusive scan of the chunk's
// own kernel values (no cross-chunk offset).
func scanChunkLocal(w *Worker, combine value.Value, lo, hi int, out []value.Value) error {
	for i := lo; i < hi; i++ {
		v, err := w.Call(w.fn, value.Int(i))
		if err != nil {
			return fmt.Errorf("parallel: kernel(%d): %w", i, err)
		}
		if i == lo {
			out[i] = v
			continue
		}
		out[i], err = w.Call(combine, out[i-1], v)
		if err != nil {
			return fmt.Errorf("parallel: combine at %d: %w", i, err)
		}
	}
	return nil
}

// ScanParallel computes the inclusive prefix fold with the classic tiled
// three-phase algorithm: (1) each worker scans its chunk locally,
// (2) chunk totals fold sequentially into per-chunk offsets, (3) workers
// combine their offset into each local element. Equals ScanSequential
// exactly when combine is associative and pure.
func (k *Kernel) ScanParallel(n, workers int) (*Result, error) {
	workers = clampWorkers(n, workers)
	if workers <= 1 {
		return k.ScanSequential(n)
	}

	out := make([]value.Value, n)
	states := make([]*Worker, workers)
	combines := make([]value.Value, workers)
	errs := make([]error, workers)

	// Phase 1: local inclusive scans.
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w, err := k.NewWorker()
			if err != nil {
				errs[wi] = err
				return
			}
			combine, err := w.Callable("combine")
			if err != nil {
				errs[wi] = err
				return
			}
			states[wi], combines[wi] = w, combine
			lo, hi := Chunk(n, workers, wi)
			errs[wi] = scanChunkLocal(w, combine, lo, hi, out)
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Phase 2: per-chunk offsets — the left fold of preceding chunk
	// totals (each chunk's total is its last local-scan element).
	offsets := make([]value.Value, workers)
	w0 := states[0]
	acc := value.Undefined()
	for wi := 1; wi < workers; wi++ {
		_, prevHi := Chunk(n, workers, wi-1)
		total := out[prevHi-1]
		if err := crossable(total, fmt.Sprintf("chunk %d total", wi-1)); err != nil {
			return nil, err
		}
		if wi == 1 {
			acc = total
		} else {
			var err error
			acc, err = w0.Call(combines[0], acc, total)
			if err != nil {
				return nil, fmt.Errorf("parallel: combine offsets: %w", err)
			}
			if err := crossable(acc, fmt.Sprintf("chunk %d offset", wi)); err != nil {
				return nil, err
			}
		}
		offsets[wi] = acc
	}

	// Phase 3: apply offsets on each worker's own interpreter.
	for wi := 1; wi < workers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			w, combine := states[wi], combines[wi]
			lo, hi := Chunk(n, workers, wi)
			for i := lo; i < hi; i++ {
				v, err := w.Call(combine, offsets[wi], out[i])
				if err != nil {
					errs[wi] = fmt.Errorf("parallel: combine offset at %d: %w", i, err)
					return
				}
				out[i] = v
			}
		}(wi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Result{Values: out, Workers: workers}, nil
}
