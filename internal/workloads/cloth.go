package workloads

import "repro/internal/browser"

// Cloth reproduces Tear-able Cloth: a Verlet-integration cloth simulation
// driven by requestAnimationFrame. The hot nest is the constraint
// relaxation loop (the paper's 80%-of-loop-time, 1077-instance,
// 1581-trip row): in-place point updates create breakable medium-grade
// dependences. Physics runs inline in one function per relaxation pass,
// so the Gecko-style sampler undercounts it (Active < In Loops in
// Table 2).
func Cloth() *Workload {
	return &Workload{
		Name:        "Tear-able Cloth",
		Category:    "Games",
		Description: "cloth physics simulation (Verlet integration)",
		Source:      clothSrc,
		Drive: func(w *browser.Window) error {
			if err := callGlobal(w, "setup"); err != nil {
				return err
			}
			frames := scale.n(110)
			// The app renders continuously; occasionally the user tears the
			// cloth (mouse events).
			for f := 0; f < frames; f++ {
				if _, err := w.PumpN(1); err != nil {
					return err
				}
				if f%30 == 15 {
					if err := w.DispatchEvent("tear", event(w.In, map[string]float64{
						"x": float64(40 + f%80), "y": float64(20 + f%40)})); err != nil {
						return err
					}
				}
			}
			return nil
		},
		PaperTotalS:            14,
		PaperActiveS:           7,
		PaperLoopsS:            9,
		ExpectActiveBelowLoops: true,
		ExpectComputeIntensive: true,
	}
}

const clothSrc = `
var COLS = 20, ROWS = 16;
var SPACING = 6;
var GRAVITY = 0.24;
var px = [], py = [], ox = [], oy = [], pinned = [];
var c0 = [], c1 = [], rest = [], alive = [];
var tearX = -1, tearY = -1;

function setup() {
  for (var y = 0; y < ROWS; y++) {
    for (var x = 0; x < COLS; x++) {
      px.push(x * SPACING + 10);
      py.push(y * SPACING + 5);
      ox.push(x * SPACING + 10);
      oy.push(y * SPACING + 5);
      pinned.push(y === 0 && x % 4 === 0 ? 1 : 0);
    }
  }
  for (var y = 0; y < ROWS; y++) {
    for (var x = 0; x < COLS; x++) {
      var i = y * COLS + x;
      if (x > 0) { addConstraint(i, i - 1); }
      if (y > 0) { addConstraint(i, i - COLS); }
    }
  }
  var cv = document.createElement("canvas");
  cv.setSize(200, 160);
  document.body.appendChild(cv);
  ctx = cv.getContext("2d");
  requestAnimationFrame(frame);
}

var ctx = null;

function addConstraint(a, b) {
  c0.push(a);
  c1.push(b);
  rest.push(SPACING);
  alive.push(1);
}

// One relaxation pass, fully inline: a long stretch of call-free script —
// the function-granularity sampler sees almost none of it.
function relaxPass() {
  for (var i = 0; i < c0.length; i++) {
    if (!alive[i]) { continue; }
    var a = c0[i], b = c1[i];
    var dx = px[a] - px[b];
    var dy = py[a] - py[b];
    var dist = Math.sqrt(dx * dx + dy * dy);
    if (dist < 0.0001) { dist = 0.0001; }
    var diff = (rest[i] - dist) / dist * 0.5;
    var offX = dx * diff, offY = dy * diff;
    if (!pinned[a]) { px[a] += offX; py[a] += offY; }
    if (!pinned[b]) { px[b] -= offX; py[b] -= offY; }
    if (dist > rest[i] * 4) { alive[i] = 0; }
    if (tearX >= 0) {
      var tx = px[a] - tearX, ty = py[a] - tearY;
      if (tx * tx + ty * ty < 64) { alive[i] = 0; }
    }
  }
}

function integrate() {
  for (var i = 0; i < px.length; i++) {
    if (pinned[i]) { continue; }
    var nx = px[i] + (px[i] - ox[i]) * 0.98;
    var ny = py[i] + (py[i] - oy[i]) * 0.98 + GRAVITY;
    ox[i] = px[i];
    oy[i] = py[i];
    px[i] = nx;
    py[i] = ny;
  }
}

function draw() {
  ctx.clearRect(0, 0, 200, 160);
  ctx.setStrokeStyle(220, 220, 255);
  ctx.beginPath();
  var step = 7;
  for (var i = 0; i < c0.length; i += step) {
    if (!alive[i]) { continue; }
    ctx.moveTo(px[c0[i]], py[c0[i]]);
    ctx.lineTo(px[c1[i]], py[c1[i]]);
  }
  ctx.stroke();
}

function frame() {
  // three relaxation passes per frame (unrolled: each pass is one nest
  // instance, making the constraint loop the Table 3 nest root)
  relaxPass();
  relaxPass();
  relaxPass();
  integrate();
  draw();
  tearX = -1;
  requestAnimationFrame(frame);
}

addEventListener("tear", function (e) {
  tearX = e.x;
  tearY = e.y;
});
`
