package workloads

import "repro/internal/browser"

// Harmony reproduces Mr.doob's Harmony drawing application: brush strokes
// connect nearby points with canvas lines. The app is almost entirely
// idle between user events (Table 2: Active 0.36s of 41s total); its
// three loop nests draw through the canvas on every iteration, which is
// what makes them "very hard" to parallelize despite easy dependences.
func Harmony() *Workload {
	return &Workload{
		Name:        "Harmony",
		Category:    "Audio and Video",
		Description: "drawing application",
		Source:      harmonySrc,
		Drive: func(w *browser.Window) error {
			if err := callGlobal(w, "setup"); err != nil {
				return err
			}
			w.IdleFor(3000 * msVirtual)
			strokes := scale.n(36)
			for i := 0; i < strokes; i++ {
				x := float64(20 + (i*13)%160)
				y := float64(20 + (i*29)%120)
				if err := w.DispatchEvent("draw", event(w.In, map[string]float64{"x": x, "y": y})); err != nil {
					return err
				}
				// user moves the pen: ~1s between sampled positions
				w.IdleFor(1000 * msVirtual)
			}
			return nil
		},
		PaperTotalS:  41,
		PaperActiveS: 0.36,
		PaperLoopsS:  0.28,
	}
}

const harmonySrc = `
var points = [];
var ctx = null;
var BRUSH = 24;

function setup() {
  var cv = document.createElement("canvas");
  cv.setSize(200, 160);
  document.body.appendChild(cv);
  ctx = cv.getContext("2d");
  ctx.setStrokeStyle(30, 30, 30);
}

// Nest 1: sweep the recent neighbourhood, connecting every point — canvas
// access on each iteration (no data-dependent branches: divergence none).
function sketchConnections(x, y) {
  var start = points.length - BRUSH;
  if (start < 0) { start = 0; }
  for (var i = start; i < points.length; i++) {
    var p = points[i];
    ctx.beginPath();
    ctx.moveTo(x, y);
    ctx.lineTo(p[0], p[1]);
    ctx.stroke();
  }
}

// Nest 2: fur shading — short offset strokes around the new point.
function furShading(x, y) {
  for (var i = 0; i < BRUSH; i++) {
    var a = (i * 2 * Math.PI) / BRUSH;
    var dx = Math.cos(a) * 4;
    var dy = Math.sin(a) * 4;
    ctx.beginPath();
    ctx.moveTo(x - dx, y - dy);
    ctx.lineTo(x + dx, y + dy);
    ctx.stroke();
  }
}

// Nest 3: pressure smudge — short rectangles fading out.
function smudge(x, y) {
  for (var i = 0; i < BRUSH / 2; i++) {
    ctx.setFillStyle(40 + i * 8, 40 + i * 8, 40 + i * 8);
    ctx.fillRect(x + i, y + i, 2, 2);
  }
}

addEventListener("draw", function (e) {
  points.push([e.x, e.y]);
  sketchConnections(e.x, e.y);
  furShading(e.x, e.y);
  smudge(e.x, e.y);
});
`
