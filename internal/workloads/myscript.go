package workloads

import "repro/internal/browser"

// MyScript reproduces the VisionObjects handwriting-recognition demo: pen
// strokes are captured client-side, lightly preprocessed (the paper notes
// the only expensive client loop just measures segment lengths over a few
// points), and then shipped to a server — the app idles through the
// round-trip, so Active is a sliver of Total. Shared recognition state
// and DOM result rendering make the nest very hard to parallelize.
func MyScript() *Workload {
	return &Workload{
		Name:        "MyScript",
		Category:    "User recognition",
		Description: "handwriting recognition application",
		Source:      myscriptSrc,
		Drive: func(w *browser.Window) error {
			if err := callGlobal(w, "setup"); err != nil {
				return err
			}
			w.IdleFor(1500 * msVirtual)
			glyphs := scale.n(24)
			for g := 0; g < glyphs; g++ {
				// each glyph: a handful of pen samples, then pen-up
				pts := 3 + (g*5)%6
				for p := 0; p < pts; p++ {
					if err := w.DispatchEvent("pen", event(w.In, map[string]float64{
						"x": float64(10 + g*4 + p*3), "y": float64(40 + (p*p)%17)})); err != nil {
						return err
					}
					w.IdleFor(40 * msVirtual)
				}
				if err := w.DispatchEvent("penup", event(w.In, nil)); err != nil {
					return err
				}
				// server round-trip for recognition
				w.IdleFor(320 * msVirtual)
			}
			return nil
		},
		PaperTotalS:  12,
		PaperActiveS: 0.33,
		PaperLoopsS:  0.15,
	}
}

const myscriptSrc = `
var stroke = [];
var recognized = "";
var resultEl = null;
var inkLength = 0;
var strokeCount = 0;

function setup() {
  resultEl = document.createElement("div");
  resultEl.setAttribute("id", "result");
  document.body.appendChild(resultEl);
}

// The client-side hot loop: segment lengths over the stroke's few points
// (Table 3: 4±2 trips), with a data-dependent simplification inner loop
// that skips near-duplicate samples (variable trips → divergence).
function preprocess() {
  var len = 0;
  var i = 1;
  for (i = 1; i < stroke.length; i++) {
    var dx = stroke[i][0] - stroke[i - 1][0];
    var dy = stroke[i][1] - stroke[i - 1][1];
    var seg = Math.sqrt(dx * dx + dy * dy);
    // skip runs of near-identical points (data-dependent trip count)
    var j = i;
    while (j + 1 < stroke.length && seg < 1.5) {
      j++;
      dx = stroke[j][0] - stroke[i - 1][0];
      dy = stroke[j][1] - stroke[i - 1][1];
      seg = Math.sqrt(dx * dx + dy * dy);
    }
    i = j;
    len += seg;
    // shared accumulators: read-modify-write across iterations
    inkLength += seg;
    resultEl.setAttribute("data-progress", "" + ((len | 0) % 100));
  }
  return len;
}

addEventListener("pen", function (e) {
  stroke.push([e.x, e.y]);
});

addEventListener("penup", function (e) {
  var len = preprocess();
  strokeCount++;
  // the recognition itself happens server-side; the client only renders
  recognized = recognized + String.fromCharCode(97 + ((len | 0) % 26));
  resultEl.setText(recognized);
  stroke = [];
});
`
