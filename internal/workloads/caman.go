package workloads

import "repro/internal/browser"

// Caman reproduces CamanJS: an image-manipulation library whose filters
// run a per-pixel callback over ImageData (the paper's 72%-of-loop-time,
// 90k-trip nest). Writes are perfectly disjoint per pixel — the
// "well-defined pattern that allows parallelism" of §4.1 — so the nest
// classifies easy/easy. The per-pixel interpreted callback keeps the
// sampler call-dense: no Active-vs-loops anomaly here.
func Caman() *Workload {
	return &Workload{
		Name:        "CamanJS",
		Category:    "Audio and Video",
		Description: "image manipulation library",
		Source:      camanSrc,
		Drive: func(w *browser.Window) error {
			if err := callGlobal(w, "setup"); err != nil {
				return err
			}
			w.IdleFor(1200 * msVirtual)
			passes := scale.n(10)
			for i := 0; i < passes; i++ {
				if err := w.DispatchEvent("applyFilters", event(w.In, map[string]float64{"pass": float64(i)})); err != nil {
					return err
				}
				w.IdleFor(300 * msVirtual)
			}
			return nil
		},
		PaperTotalS:            40,
		PaperActiveS:           23,
		PaperLoopsS:            17,
		ExpectComputeIntensive: true,
	}
}

const camanSrc = `
var CW = 72, CH = 56;
var ctx = null;
var imageData = null;

function setup() {
  var cv = document.createElement("canvas");
  cv.setSize(CW, CH);
  document.body.appendChild(cv);
  ctx = cv.getContext("2d");
  // paint a gradient test card
  ctx.setFillStyle(40, 90, 160);
  ctx.fillRect(0, 0, CW, CH);
  ctx.setFillStyle(200, 120, 40);
  ctx.fillRect(8, 8, CW - 16, CH - 16);
  imageData = ctx.getImageData(0, 0, CW, CH);
}

// The CamanJS core: iterate every pixel, apply the callback. This is the
// main Table 3 nest (one instance per filter application).
function processPixels(data, fn) {
  for (var i = 0; i < data.length; i += 4) {
    var out = fn(data[i], data[i + 1], data[i + 2]);
    data[i] = out[0];
    data[i + 1] = out[1];
    data[i + 2] = out[2];
  }
}

function clampByte(v) {
  if (v < 0) { return 0; }
  if (v > 255) { return 255; }
  return v | 0;
}

function brightness(amount) {
  processPixels(imageData.data, function (r, g, b) {
    return [clampByte(r + amount), clampByte(g + amount), clampByte(b + amount)];
  });
}

function contrast(amount) {
  var f = (259 * (amount + 255)) / (255 * (259 - amount));
  processPixels(imageData.data, function (r, g, b) {
    return [clampByte(f * (r - 128) + 128), clampByte(f * (g - 128) + 128), clampByte(f * (b - 128) + 128)];
  });
}

function saturation(amount) {
  processPixels(imageData.data, function (r, g, b) {
    var avg = (r + g + b) / 3;
    return [clampByte(avg + (r - avg) * amount), clampByte(avg + (g - avg) * amount), clampByte(avg + (b - avg) * amount)];
  });
}

// Vignette: distance falloff — the second Table 3 nest (explicit x/y).
function vignette() {
  var data = imageData.data;
  var cx = CW / 2, cy = CH / 2;
  var maxD = Math.sqrt(cx * cx + cy * cy);
  for (var y = 0; y < CH; y++) {
    for (var x = 0; x < CW; x++) {
      var dx = x - cx, dy = y - cy;
      var d = Math.sqrt(dx * dx + dy * dy) / maxD;
      var f = 1 - d * d * 0.6;
      var i = (y * CW + x) * 4;
      data[i] = clampByte(data[i] * f);
      data[i + 1] = clampByte(data[i + 1] * f);
      data[i + 2] = clampByte(data[i + 2] * f);
    }
  }
}

// Box blur: neighbourhood reads — the third nest, reading a snapshot so
// writes stay disjoint.
function boxBlur() {
  var data = imageData.data;
  var src = [];
  for (var i = 0; i < data.length; i++) { src.push(data[i]); }
  for (var y = 1; y < CH - 1; y++) {
    for (var x = 1; x < CW - 1; x++) {
      var i = (y * CW + x) * 4;
      for (var ch = 0; ch < 3; ch++) {
        var sum = 0;
        sum += src[i + ch - 4] + src[i + ch + 4];
        sum += src[i + ch - CW * 4] + src[i + ch + CW * 4];
        sum += src[i + ch];
        data[i + ch] = clampByte(sum / 5);
      }
    }
  }
}

addEventListener("applyFilters", function (e) {
  brightness(10);
  contrast(20);
  saturation(0.8);
  vignette();
  boxBlur();
  ctx.putImageData(imageData, 0, 0);
});
`
