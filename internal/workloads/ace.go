package workloads

import "repro/internal/browser"

// Ace reproduces the Cloud9 code editor: keystroke-driven rendering where
// the hot "loops" barely iterate — the renderer re-runs until no more
// cascading layout changes remain, which almost always converges in one
// pass (Table 3: trips 1±0.1). Shared editor state (line widths, cursor,
// scroll metrics) and per-line DOM updates make the nests very hard on
// both dependence and parallelization axes.
func Ace() *Workload {
	return &Workload{
		Name:        "Ace",
		Category:    "Productivity",
		Description: "code editor used by the Cloud9 IDE",
		Source:      aceSrc,
		Drive: func(w *browser.Window) error {
			if err := callGlobal(w, "setup"); err != nil {
				return err
			}
			w.IdleFor(2000 * msVirtual)
			keys := scale.n(56)
			for i := 0; i < keys; i++ {
				code := float64(97 + (i*7)%26) // letters
				if i%11 == 10 {
					code = 10 // newline
				}
				if err := w.DispatchEvent("key", event(w.In, map[string]float64{"code": code})); err != nil {
					return err
				}
				// typical typing cadence
				w.IdleFor(450 * msVirtual)
			}
			return nil
		},
		PaperTotalS:  30,
		PaperActiveS: 0.4,
		PaperLoopsS:  0.4,
	}
}

const aceSrc = `
var lines = [""];
var lineNodes = [];
var cursorRow = 0, cursorCol = 0;
var maxWidth = 0;
var scrollTop = 0;
var gutterWidth = 2;
var editorEl = null;

function setup() {
  editorEl = document.createElement("div");
  editorEl.setAttribute("id", "editor");
  document.body.appendChild(editorEl);
  addLineNode();
}

function addLineNode() {
  var n = document.createElement("div");
  editorEl.appendChild(n);
  lineNodes.push(n);
}

// Nest 1 (the paper's 42% row): run layout until no cascading changes —
// converges after one pass in the common case, so trips ~ 1.
var layoutCache = { width: 0, height: 0, gutter: 2, generation: 0 };

function renderLoop() {
  var changed = true;
  var guard = 0;
  while (changed && guard < 5) {
    changed = false;
    guard++;
    var width = measureWidths();
    if (width > maxWidth) {
      maxWidth = width;
      // widening the text area changes the gutter, forcing a re-layout
      gutterWidth = 2 + (("" + lines.length).length);
      changed = true;
    }
    // layout cache: every pass reads what the previous pass wrote
    if (layoutCache.width !== maxWidth || layoutCache.height !== lines.length * 10) {
      layoutCache.width = maxWidth;
      layoutCache.height = lines.length * 10;
      layoutCache.gutter = gutterWidth;
      layoutCache.generation = layoutCache.generation + 1;
      changed = changed || layoutCache.generation < 2;
    }
    var newScroll = cursorRow * 10 - 40;
    if (newScroll < 0) { newScroll = 0; }
    if (newScroll !== scrollTop) {
      scrollTop = newScroll;
    }
    // the renderer repositions the scroller every pass (DOM in-loop)
    editorEl.setStyle("top", "-" + scrollTop + "px");
    editorEl.setAttribute("data-gen", "" + layoutCache.generation);
  }
}

// Nest 2 (the 22% row): update dirty line nodes — usually exactly the one
// line being edited, so this while loop over the dirty set trips ~ once.
var dirty = [];
function flushDirty() {
  while (dirty.length > 0) {
    var row = dirty.pop();
    if (row >= lineNodes.length) { continue; }
    lineNodes[row].setText(lines[row]);
    lineNodes[row].setStyle("width", maxWidth + "px");
  }
}

function measureWidths() {
  var w = maxWidth;
  var row = cursorRow;
  // measure only the edited line (shared metric state: read-modify-write)
  if (lines[row].length > w) {
    w = lines[row].length;
  }
  return w;
}

addEventListener("key", function (e) {
  var code = e.code | 0;
  if (code === 10) {
    lines.push("");
    cursorRow = lines.length - 1;
    cursorCol = 0;
    addLineNode();
  } else {
    lines[cursorRow] = lines[cursorRow] + String.fromCharCode(code);
    cursorCol++;
  }
  dirty.push(cursorRow);
  renderLoop();
  flushDirty();
});
`
