package workloads

// ImagePipe is the streaming-pipeline workload for ModeExec's pipeline
// ladder: a decode → filter → encode image pass whose stages form a
// produce → consume chain. Flat mapPar cannot merge the chain — each
// stage's loop reads the array the previous loop wrote, so the three
// loops are sequentially dependent — but pipePar can stream index-range
// batches between stages (autopar.PipelineSpec over
// taskgraph.RunPipeline), overlapping decode of batch k+1 with filter
// of batch k.
//
// Like ExecKernels, every stage stays within the speculation contract:
// captures are scalars and interpreted helpers, inputs and results are
// numbers, so the static prover can prove each stage and the pipeline
// runs guard-free under -static=assist.

import "strconv"

// PipeStage is one stage of the streaming workload in elemental form.
type PipeStage struct {
	// Name labels the stage in reports ("decode", "filter", "encode").
	Name string
	// Elemental is the `function (x, i) { ... }` source for this stage;
	// its x is the previous stage's result (the raw input for stage 0).
	Elemental string
}

// PipeKernel is a produce → consume hot-loop chain in pipePar form.
type PipeKernel struct {
	// App and Loop mirror ExecKernel labeling.
	App, Loop string
	// Prelude defines the helpers and constants the stages capture.
	Prelude string
	// Stages in produce → consume order.
	Stages []PipeStage
	// N is the full-scale element count (scaled by the active Scale).
	N int
	// Input generates raw input element i (the packed pixel stream).
	Input func(i int) float64
	// WantPairs is the number of produce → consume pairs the
	// core.PipePairDetector must find in PairProgram (the setup loop
	// feeding stage 1, plus each adjacent stage pair).
	WantPairs int
}

// ImagePipe returns the decode → filter → encode pipeline workload.
func ImagePipe() PipeKernel {
	return PipeKernel{
		App:  "CamanJS",
		Loop: "decode/filter/encode pixel pipeline",
		Prelude: `
var GAMMA_N = 24;
function srgbExpand(v) {
  var c = v / 255;
  var acc = c;
  for (var g = 0; g < GAMMA_N; g++) { acc = acc * 0.92 + c * c * 0.08; }
  return acc;
}
function toneCurve(l) {
  var t = l;
  for (var g = 0; g < GAMMA_N; g++) { t = t + Math.sin(t * 3.1) * 0.01; }
  return t < 0 ? 0 : (t > 1 ? 1 : t);
}
function ditherByte(v, i) {
  var d = v * 255 + ((i * 7) % 4) * 0.25 - 0.375;
  d = d < 0 ? 0 : (d > 255 ? 255 : d);
  return d - d % 1;
}`,
		Stages: []PipeStage{
			{Name: "decode", Elemental: `function (x, i) {
  var r = (x * 7 + i) % 256;
  var g = (x * 13 + i * 3) % 256;
  var b = (x * 29 + i * 7) % 256;
  return srgbExpand(r) * 0.2126 + srgbExpand(g) * 0.7152 + srgbExpand(b) * 0.0722;
}`},
			{Name: "filter", Elemental: `function (x, i) {
  return toneCurve(x * 1.18 + 0.04);
}`},
			{Name: "encode", Elemental: `function (x, i) {
  return ditherByte(x, i);
}`},
		},
		N:     4096,
		Input: func(i int) float64 { return float64((i * 31) % 251) },
		// setup → decode, decode → filter, filter → encode.
		WantPairs: 3,
	}
}

// PairProgram renders the kernel as raw dependent for-loops — the form
// a page author actually writes, and the form core.PipePairDetector
// analyzes. Loop 1 packs the raw input; loops 2..k+1 are the stages,
// each pushing into its own output array after reading its
// predecessor's. n is the element count (callers pass a scaled-down n;
// the detector's answer is count-independent beyond n >= 1).
func (pk PipeKernel) PairProgram(n int) string {
	src := pk.Prelude + "\nvar __s0 = [];\n"
	src += "for (var q = 0; q < " + itoa(n) + "; q++) { __s0.push((q * 31) % 251); }\n"
	for s, st := range pk.Stages {
		src += "var __f" + itoa(s+1) + " = " + st.Elemental + ";\n"
		src += "var __s" + itoa(s+1) + " = [];\n"
		src += "for (var i = 0; i < " + itoa(n) + "; i++) { __s" + itoa(s+1) +
			".push(__f" + itoa(s+1) + "(__s" + itoa(s) + "[i], i)); }\n"
	}
	return src
}

func itoa(n int) string { return strconv.Itoa(n) }
