package workloads

import "repro/internal/browser"

// D3 reproduces the D3.js interactive azimuthal projection map: rotating
// the globe re-projects every geographic feature and rewrites its DOM
// path. Clipping against the horizon makes control flow diverge
// (Table 3: divergence yes); accumulated projection state (bounds,
// adaptive resampling budget) creates hard-to-break dependences; the DOM
// write per feature pins parallelization difficulty at "hard".
func D3() *Workload {
	return &Workload{
		Name:        "D3.js",
		Category:    "Visualization",
		Description: "interactive azimuthal projection map",
		Source:      d3Src,
		Drive: func(w *browser.Window) error {
			if err := callGlobal(w, "setup"); err != nil {
				return err
			}
			w.IdleFor(2000 * msVirtual)
			drags := scale.n(16)
			for i := 0; i < drags; i++ {
				if err := w.DispatchEvent("rotate", event(w.In, map[string]float64{
					"dLon": 0.15, "dLat": 0.05})); err != nil {
					return err
				}
				w.IdleFor(700 * msVirtual)
			}
			return nil
		},
		PaperTotalS:            18,
		PaperActiveS:           5,
		PaperLoopsS:            4,
		ExpectComputeIntensive: true,
	}
}

const d3Src = `
var FEATURES = 42;
var features = [];   // each: list of [lon, lat] rings
var pathEls = [];
var rotLon = 0, rotLat = 0;
var svg = null;
var boundsMinX = 0, boundsMaxX = 0, boundsMinY = 0, boundsMaxY = 0;
var resampleBudget = 4000;

// d3.geo-style projection function: one interpreted call per point.
function projectPoint(lonDeg, latDeg, cosLat, sinLat) {
  var lon = lonDeg * 0.017453 + rotLon;
  var lat = latDeg * 0.017453;
  var cosc = sinLat * Math.sin(lat) + cosLat * Math.cos(lat) * Math.cos(lon);
  var x = 80 + 70 * Math.cos(lat) * Math.sin(lon);
  var y = 80 - 70 * (cosLat * Math.sin(lat) - sinLat * Math.cos(lat) * Math.cos(lon));
  return [x, y, cosc];
}

function setup() {
  svg = document.createElement("svg");
  document.body.appendChild(svg);
  for (var f = 0; f < FEATURES; f++) {
    var pts = [];
    var n = 40 + ((f * 37) % 120); // 40..159 points per feature (156±57-ish)
    var lon0 = (f * 59) % 360 - 180;
    var lat0 = (f * 31) % 140 - 70;
    for (var i = 0; i < n; i++) {
      pts.push([lon0 + Math.sin(i * 0.3) * 14, lat0 + Math.cos(i * 0.23) * 9]);
    }
    features.push(pts);
    var el = document.createElement("path");
    svg.appendChild(el);
    pathEls.push(el);
  }
}

// Re-project every feature: the paper's single dominant nest (99% of loop
// time, 156±57 trips on the point loop). Horizon clipping branches are
// data-dependent; the bounds/budget accumulators chain iterations
// together; each feature writes its DOM path.
function reproject() {
  boundsMinX = 1e9; boundsMaxX = -1e9; boundsMinY = 1e9; boundsMaxY = -1e9;
  resampleBudget = 4000;
  var cosLat = Math.cos(rotLat), sinLat = Math.sin(rotLat);
  for (var f = 0; f < features.length; f++) {
    var pts = features[f];
    var d = "";
    var pen = 0; // 0 = up, 1 = down
    for (var i = 0; i < pts.length; i++) {
      var pr = projectPoint(pts[i][0], pts[i][1], cosLat, sinLat);
      if (pr[2] < 0) {
        pen = 0; // behind the horizon: clip (divergent branch)
        continue;
      }
      var x = pr[0];
      var y = pr[1];
      // adaptive resampling: consume shared budget (flow dependence)
      if (resampleBudget > 0) {
        resampleBudget--;
        if (pen === 1) {
          d = d + "L" + (x | 0) + "," + (y | 0);
        } else {
          d = d + "M" + (x | 0) + "," + (y | 0);
          pen = 1;
        }
      }
      // shared bounds accumulators (read-modify-write)
      if (x < boundsMinX) { boundsMinX = x; }
      if (x > boundsMaxX) { boundsMaxX = x; }
      if (y < boundsMinY) { boundsMinY = y; }
      if (y > boundsMaxY) { boundsMaxY = y; }
    }
    pathEls[f].setAttribute("d", d);
  }
  svg.setAttribute("viewBox", (boundsMinX | 0) + " " + (boundsMinY | 0) + " " + ((boundsMaxX - boundsMinX) | 0) + " " + ((boundsMaxY - boundsMinY) | 0));
}

addEventListener("rotate", function (e) {
  rotLon += e.dLon;
  rotLat += e.dLat;
  reproject();
});
`
