package workloads

// ExecKernels lists the ParallelArray-convertible hot loops of the
// Table 1 workloads (plus the Histogram control) for the case study's
// ModeExec: each kernel is the elemental-function form of a loop nest
// that ModeDeep grades "easy" to parallelize, so the speculative engine
// (internal/autopar, via rivertrail.ParallelArray) can execute it both
// ways and report *measured* speedup next to the Amdahl bound.
//
// Every elemental stays within the speculation contract on purpose:
// captures are scalars, flat primitive arrays and interpreted helpers;
// inputs and results are numbers. Apps whose hot loops carry real
// loop-order dependences (Ace's tokenizer state machine, Harmony's
// alpha-beta search, MyScript's stroke recognizer, the scripting-heavy
// sigma/Processing/D3 drivers) have no entry here — that absence *is*
// the §4.1 finding: not every hot loop converts.

import (
	"fmt"
	"strings"
)

// ExecKernel is one convertible hot loop in ParallelArray form.
type ExecKernel struct {
	// App is the Table 1 workload name (or "Histogram").
	App string
	// Loop names the hot loop the kernel mirrors (Table 3 rows).
	Loop string
	// Prelude defines the helpers and constants the elemental captures.
	Prelude string
	// Elemental is the `function (x, i) { ... }` source passed to mapPar.
	Elemental string
	// N is the full-scale element count (scaled by the active Scale).
	N int
	// Input generates input element i.
	Input func(i int) float64
}

// N applies the scale to a full-size element count.
func (s Scale) N(full int) int { return s.n(full) }

// KernelSource converts the elemental to internal/parallel Kernel form
// (`function kernel(i)`) for the scheduler benchmarks and tests. The
// elemental is called with a fixed x — the Input stream perturbs values
// only fractionally and is irrelevant to the cost *shape* the scheduler
// ladder measures.
func (ek ExecKernel) KernelSource() string {
	return ek.Prelude + "\nvar __elemental = " + ek.Elemental + ";\n" +
		"function kernel(i) { return __elemental(0, i); }\n"
}

// ExecKernelByLoop returns the convertible kernel whose Loop name
// contains substr (the benchmarks address the balanced and skewed
// raytracer variants this way).
func ExecKernelByLoop(substr string) (ExecKernel, error) {
	for _, ek := range ExecKernels() {
		if strings.Contains(ek.Loop, substr) {
			return ek, nil
		}
	}
	return ExecKernel{}, fmt.Errorf("workloads: no exec kernel with loop matching %q", substr)
}

// ExecKernels returns the convertible hot loops in Table 1 order.
func ExecKernels() []ExecKernel {
	return []ExecKernel{
		{
			App:  "HAAR.js",
			Loop: "evalStage window scan",
			Prelude: `
function haarLum(x, y) {
  return ((x * 211 + y * 17) % 256) * 0.299 + ((x * 31 + y * 97) % 256) * 0.587 + ((x * 7 + y * 139) % 256) * 0.114;
}`,
			Elemental: `function (x, i) {
  var wx = i % 40;
  var wy = (i - wx) / 40;
  var a = 0, b = 0;
  for (var r = 0; r < 6; r++) {
    for (var c = 0; c < 6; c++) {
      var l = haarLum(wx * 2 + c, wy * 2 + r);
      if (c < 3) { a += l; } else { b += l; }
    }
  }
  var resp = a - b + x;
  return resp > 0 ? resp : 0;
}`,
			N:     2048,
			Input: func(i int) float64 { return float64(i % 17) },
		},
		{
			App:  "Tear-able Cloth",
			Loop: "per-particle spring accumulation",
			Prelude: `
var DX = [1, 0, -1, 0];
var DY = [0, 1, 0, -1];
function springF(d, rest, k) { return (d - rest) * k; }`,
			Elemental: `function (x, i) {
  var px = i % 32;
  var py = (i - px) / 32;
  var fx = 0, fy = 0;
  for (var k = 0; k < 4; k++) {
    var nx = px + DX[k], ny = py + DY[k];
    var dx = (nx - px) + Math.sin(nx * 0.3 + x * 0.01) * 0.1;
    var dy = (ny - py) + Math.cos(ny * 0.3) * 0.1;
    var d = Math.sqrt(dx * dx + dy * dy);
    fx += springF(d, 1, 0.8) * dx / d;
    fy += springF(d, 1, 0.8) * dy / d + 0.02;
  }
  return fx * fx + fy * fy;
}`,
			N:     1024,
			Input: func(i int) float64 { return float64((i*7)%23) / 23 },
		},
		{
			App:  "CamanJS",
			Loop: "per-pixel brightness/contrast pass",
			Prelude: `
var BRIGHT = 12;
var CONTRAST = 1.18;
function clampByte(v) { return v < 0 ? 0 : (v > 255 ? 255 : v); }`,
			Elemental: `function (x, i) {
  var r = (x * 7 + i) % 256;
  var g = (x * 13 + i * 3) % 256;
  var b = (x * 29 + i * 7) % 256;
  r = clampByte((r - 128) * CONTRAST + 128 + BRIGHT);
  g = clampByte((g - 128) * CONTRAST + 128 + BRIGHT);
  b = clampByte((b - 128) * CONTRAST + 128 + BRIGHT);
  return (r * 65536 + g * 256 + b) | 0;
}`,
			N:     4096,
			Input: func(i int) float64 { return float64((i * 31) % 251) },
		},
		{
			App:  "fluidSim",
			Loop: "advection cell sampling",
			Prelude: `
var FW = 48;
function fieldAt(x, y) { return Math.sin(x * 0.37) * Math.cos(y * 0.23); }`,
			Elemental: `function (x, i) {
  var cx = i % FW;
  var cy = (i - cx) / FW;
  var vx = fieldAt(cx, cy), vy = fieldAt(cy, cx);
  var sx = cx - vx * 1.5, sy = cy - vy * 1.5;
  var i0 = Math.floor(sx), j0 = Math.floor(sy);
  var s1 = sx - i0, t1 = sy - j0;
  var d00 = fieldAt(i0, j0), d10 = fieldAt(i0 + 1, j0);
  var d01 = fieldAt(i0, j0 + 1), d11 = fieldAt(i0 + 1, j0 + 1);
  var adv = (1 - s1) * ((1 - t1) * d00 + t1 * d01) + s1 * ((1 - t1) * d10 + t1 * d11);
  return adv * (1 + x * 0.001);
}`,
			N:     2304,
			Input: func(i int) float64 { return float64(i % 13) },
		},
		{
			App:  "Realtime Raytracing",
			Loop: "primary-ray sphere intersection",
			Prelude: `
var RTW = 64, RTH = 48;
var SPX = [0, 2.2, -2.1];
var SPY = [0, 0.4, -0.3];
var SPZ = [6, 7.5, 5.2];
var SPR = [1.6, 1.1, 0.9];
var SPC = [255, 60, 60];`,
			Elemental: `function (x, i) {
  var px = i % RTW;
  var py = (i - px) / RTW;
  var dx = (px - RTW / 2) / RTW, dy = (py - RTH / 2) / RTW, dz = 1;
  var il = 1 / Math.sqrt(dx * dx + dy * dy + dz * dz);
  dx *= il; dy *= il; dz *= il;
  var bestT = 1e9, best = -1;
  for (var s = 0; s < 3; s++) {
    var cx = SPX[s], cy = SPY[s], cz = SPZ[s];
    var b = cx * dx + cy * dy + cz * dz;
    var det = b * b - (cx * cx + cy * cy + cz * cz) + SPR[s] * SPR[s];
    if (det > 0) {
      var tHit = b - Math.sqrt(det);
      if (tHit > 0.001 && tHit < bestT) { bestT = tHit; best = s; }
    }
  }
  if (best < 0) {
    var sky = 40 + dy * 80;
    return sky < 0 ? 0 : sky;
  }
  return SPC[best] * (1 - bestT / 20) + x * 0.001;
}`,
			N:     3072,
			Input: func(i int) float64 { return float64(i % 7) },
		},
		{
			App:  "Realtime Raytracing",
			Loop: "skewed adaptive supersampling",
			// The deliberately imbalanced variant: a single large sphere
			// sits in the upper-left of the frame, and only rays that hit
			// it pay a 48-sample supersampling loop — so per-element cost
			// is data-dependent and concentrated in the low-index corner.
			// A static even split pins that corner on one worker; the
			// work-stealing scheduler's shrinking tail chunks migrate it,
			// which is exactly what the BenchmarkSched ladder measures.
			Prelude: `
var SRW = 64, SRH = 48;
var SCX = -1.9, SCY = -1.4, SCZ = 5.0, SCR = 2.4;`,
			Elemental: `function (x, i) {
  var px = i % SRW;
  var py = (i - px) / SRW;
  var dx = (px - SRW / 2) / SRW, dy = (py - SRH / 2) / SRW, dz = 1;
  var il = 1 / Math.sqrt(dx * dx + dy * dy + dz * dz);
  dx *= il; dy *= il; dz *= il;
  var b = SCX * dx + SCY * dy + SCZ * dz;
  var det = b * b - (SCX * SCX + SCY * SCY + SCZ * SCZ) + SCR * SCR;
  if (det <= 0) {
    var sky = 8 + dy * 40;
    return sky < 0 ? 0 : sky;
  }
  var t = b - Math.sqrt(det);
  var acc = 0;
  for (var s = 0; s < 48; s++) {
    var jx = dx + Math.sin(s * 2.3 + px) * 0.002;
    var jy = dy + Math.cos(s * 1.7 + py) * 0.002;
    var jb = SCX * jx + SCY * jy + SCZ * dz;
    var jd = jb * jb - (SCX * SCX + SCY * SCY + SCZ * SCZ) + SCR * SCR;
    acc += jd > 0 ? (jb - Math.sqrt(jd)) : t;
  }
  return acc / 48 * 30 + x * 0.001;
}`,
			N:     3072,
			Input: func(i int) float64 { return float64(i % 7) },
		},
		{
			App:  "Normal Mapping",
			Loop: "relight per-pixel shading",
			Prelude: `
var NMW = 64;
var LX = 0.42, LY = 0.54, LZ = 0.72;
function heightAt(x, y) { return Math.sin(x * 0.2) * Math.cos(y * 0.17) * 8; }
function shadeN(nx, ny, nz, lx, ly, lz) { return Math.max(0, nx * lx + ny * ly + nz * lz); }`,
			Elemental: `function (x, i) {
  var px = i % NMW;
  var py = (i - px) / NMW;
  var nx = heightAt(px - 1, py) - heightAt(px + 1, py);
  var ny = heightAt(px, py - 1) - heightAt(px, py + 1);
  var nz = 2;
  var il = 1 / Math.sqrt(nx * nx + ny * ny + nz * nz);
  var d = shadeN(nx * il, ny * il, nz * il, LX, LY, LZ);
  var spec = d * d;
  spec = spec * spec;
  var v = 30 + d * 170 + spec * 55;
  return v > 255 ? 255 : v | 0;
}`,
			N:     3072,
			Input: func(i int) float64 { return float64(i % 5) },
		},
		{
			App:  "Histogram",
			Loop: "per-pixel luminance map",
			Prelude: `
function lum(r, g, b) { return (r * 2126 + g * 7152 + b * 722) / 10000 | 0; }`,
			Elemental: `function (x, i) {
  var px = i % 96;
  var py = (i - px) / 96;
  var r = (px * 211 + py * 17 + 24) % 256;
  var g = (px * 31 + py * 97 + 48) % 256;
  var b = (px * 7 + py * 139 + 96) % 256;
  return lum(r, g, b) + x * 0;
}`,
			N:     6144,
			Input: func(i int) float64 { return 0 },
		},
	}
}
