// Package workloads re-implements the computational kernels of the 12
// web applications in Table 1 of the paper, written in the JavaScript
// subset and driven through the simulated browser.
//
// Each workload preserves the *shape* that mattered to the paper's
// analysis: the loop-nest structure, trip counts, memory access patterns
// (disjoint pixel writes vs. shared in-place state), DOM/canvas usage, and
// the interactive vs. compute-bound duty cycle. Absolute times are virtual
// and deterministic.
package workloads

import (
	"fmt"

	"repro/internal/browser"
	"repro/internal/js/ast"
	"repro/internal/js/interp"
	"repro/internal/js/value"
)

// Workload is one Table 1 application.
type Workload struct {
	// Name matches Table 1 (e.g. "HAAR.js").
	Name string
	// Category/Description match Table 1.
	Category    string
	Description string
	// Source is the application code in the JavaScript subset.
	Source string
	// Drive exercises the app (dispatches simulated user events, pumps the
	// event queue, idles between interactions) — step 4 of Fig. 5.
	Drive func(w *browser.Window) error

	// Paper columns of Table 2 (seconds), for EXPERIMENTS.md comparisons.
	PaperTotalS, PaperActiveS, PaperLoopsS float64

	// ExpectActiveBelowLoops records whether Table 2 shows the Gecko
	// anomaly (Active < In Loops) for this app.
	ExpectActiveBelowLoops bool
	// ExpectComputeIntensive marks apps the paper counts as
	// compute-intensive (CPU active a large portion of runtime).
	ExpectComputeIntensive bool
}

// NSPerStep is the virtual cost of one interpreter step used throughout
// the case study (1µs keeps Table 2 magnitudes readable).
const NSPerStep = 1000

// Scale shrinks workload sizes for quick runs (1 = full case-study size).
type Scale struct {
	// Div divides iteration counts (frames, strokes, filter passes).
	Div int
}

// FullScale is the Table 2/3 configuration.
var FullScale = Scale{Div: 1}

// QuickScale runs each app at roughly 1/4 size for tests.
var QuickScale = Scale{Div: 4}

func (s Scale) n(full int) int {
	if s.Div <= 1 {
		return full
	}
	v := full / s.Div
	if v < 1 {
		v = 1
	}
	return v
}

// scale is consulted by drivers; set via SetScale before Run.
var scale = FullScale

// SetScale configures the global workload scale (tests use QuickScale).
func SetScale(s Scale) {
	if s.Div < 1 {
		s.Div = 1
	}
	scale = s
}

// CurrentScale returns the active scale.
func CurrentScale() Scale { return scale }

// All returns the 12 workloads in Table 1 order.
func All() []*Workload {
	return []*Workload{
		HAAR(),
		Cloth(),
		Caman(),
		Fluid(),
		Harmony(),
		Ace(),
		MyScript(),
		Raytrace(),
		NormalMap(),
		Sigma(),
		Processing(),
		D3(),
	}
}

// ByName finds a workload by its Table 1 name.
func ByName(name string) (*Workload, error) {
	for _, w := range All() {
		if w.Name == name {
			return w, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown workload %q", name)
}

// Run parses, loads and drives the workload inside the interpreter,
// returning the window for substrate inspection. Install hooks on the
// interpreter before calling to analyse the run.
func Run(wl *Workload, in *interp.Interp) (*browser.Window, error) {
	return RunWith(wl, in, nil)
}

// RunWith is Run with a window configurator invoked before the program
// loads (e.g. to install a task-boundary listener).
func RunWith(wl *Workload, in *interp.Interp, configure func(w *browser.Window)) (*browser.Window, error) {
	w := browser.NewWindow(in)
	if configure != nil {
		configure(w)
	}
	prog, err := interp.Load(wl.Source)
	if err != nil {
		return nil, fmt.Errorf("workloads: parse %s: %w", wl.Name, err)
	}
	if err := in.Run(prog); err != nil {
		return nil, fmt.Errorf("workloads: load %s: %w", wl.Name, err)
	}
	if wl.Drive != nil {
		if err := wl.Drive(w); err != nil {
			return nil, fmt.Errorf("workloads: drive %s: %w", wl.Name, err)
		}
	}
	return w, nil
}

// Parse returns the workload's parsed program for loop-table lookups.
// The AST comes from the process-wide interp.Load cache and is shared
// read-only: callers must not mutate it.
func Parse(wl *Workload) (*ast.Program, error) {
	return interp.Load(wl.Source)
}

// NewInterp returns an interpreter configured for the case study.
func NewInterp(seed uint64) *interp.Interp {
	return interp.New(
		interp.WithNSPerStep(NSPerStep),
		interp.WithSeed(seed),
		interp.WithMaxSteps(400_000_000),
	)
}

// event constructs a payload object for DispatchEvent through the
// instrumented allocation path.
func event(in *interp.Interp, kv map[string]float64) value.Value {
	o := in.NewObject()
	for k, v := range kv {
		o.Set(k, value.Number(v))
	}
	return value.ObjectVal(o)
}

// callGlobal invokes a global function defined by the workload source.
func callGlobal(w *browser.Window, name string, args ...value.Value) error {
	fn := w.In.Global(name)
	if !fn.IsCallable() {
		return fmt.Errorf("workloads: global %q is not a function", name)
	}
	_, err := w.In.SafeCall(fn, value.Undefined(), args)
	return err
}

const msVirtual = int64(1e6) // one virtual millisecond in ns
