package workloads

import "repro/internal/browser"

// Raytrace reproduces the real-time raytracing demo: per frame, every
// pixel shoots a ray through a small sphere scene with data-dependent
// reflection bounces (the paper's "variable depth recursion" → divergence
// yes). Pixel writes are perfectly disjoint — the only nest rated "very
// easy" to break — and the whole row renders inline in one function, so
// the function-granularity sampler undercounts it (Active < In Loops).
func Raytrace() *Workload {
	return &Workload{
		Name:        "Realtime Raytracing",
		Category:    "Games",
		Description: "real-time raytracing demo",
		Source:      raytraceSrc,
		Drive: func(w *browser.Window) error {
			if err := callGlobal(w, "setup"); err != nil {
				return err
			}
			frames := scale.n(20)
			for f := 0; f < frames; f++ {
				if _, err := w.PumpN(1); err != nil {
					return err
				}
			}
			return nil
		},
		PaperTotalS:            62,
		PaperActiveS:           19,
		PaperLoopsS:            26,
		ExpectActiveBelowLoops: true,
		ExpectComputeIntensive: true,
	}
}

const raytraceSrc = `
var RW = 64, RH = 40;
var pixels = [];
var spheres = [];
var t = 0;
var ctx = null;

function setup() {
  for (var i = 0; i < RW * RH * 4; i++) { pixels.push(0); }
  spheres.push({ x: 0, y: 0, z: 6, r: 1.6, cr: 255, cg: 60, cb: 60, refl: 0.7 });
  spheres.push({ x: 2.2, y: 0.4, z: 7.5, r: 1.1, cr: 60, cg: 255, cb: 60, refl: 0.5 });
  spheres.push({ x: -2.1, y: -0.3, z: 5.2, r: 0.9, cr: 60, cg: 60, cb: 255, refl: 0.0 });
  var cv = document.createElement("canvas");
  cv.setSize(RW, RH);
  document.body.appendChild(cv);
  ctx = cv.getContext("2d");
  requestAnimationFrame(frame);
}

// Render one scanline fully inline: ray setup, sphere intersection,
// shading and the bounce loop all live in this single function body. The
// only calls are JIT-inlined Math intrinsics, so a sampling profiler sees
// one long opaque stretch per row.
function renderRow(y) {
  for (var x = 0; x < RW; x++) {
    var ox = 0, oy = 0, oz = 0;
    var dx = (x - RW / 2) / RW;
    var dy = (y - RH / 2) / RW;
    var dz = 1;
    var ilen = 1 / Math.sqrt(dx * dx + dy * dy + dz * dz);
    dx *= ilen; dy *= ilen; dz *= ilen;
    var cr = 0, cg = 0, cb = 0;
    var weight = 1;
    var depth = 0;
    var alive = true;
    while (alive && depth < 6) {
      depth++;
      var bestT = 1e9;
      var best = -1;
      for (var s = 0; s < spheres.length; s++) {
        var sp = spheres[s];
        var cx = sp.x - ox, cy = sp.y - oy, cz = sp.z - oz;
        var b = cx * dx + cy * dy + cz * dz;
        var det = b * b - (cx * cx + cy * cy + cz * cz) + sp.r * sp.r;
        if (det > 0) {
          var tHit = b - Math.sqrt(det);
          if (tHit > 0.001 && tHit < bestT) {
            bestT = tHit;
            best = s;
          }
        }
      }
      if (best < 0) {
        // sky gradient
        var sky = 40 + dy * 80;
        if (sky < 0) { sky = 0; }
        cr += weight * sky;
        cg += weight * (sky + 20);
        cb += weight * (sky + 60);
        alive = false;
      } else {
        var sp2 = spheres[best];
        var hx = ox + dx * bestT, hy = oy + dy * bestT, hz = oz + dz * bestT;
        var nx = (hx - sp2.x) / sp2.r, ny = (hy - sp2.y) / sp2.r, nz = (hz - sp2.z) / sp2.r;
        var light = nx * 0.5 - ny * 0.7 + nz * -0.5;
        if (light < 0.05) { light = 0.05; }
        var local = 1 - sp2.refl;
        cr += weight * local * sp2.cr * light;
        cg += weight * local * sp2.cg * light;
        cb += weight * local * sp2.cb * light;
        if (sp2.refl > 0.01) {
          // reflect and keep tracing: data-dependent bounce depth
          var dot = dx * nx + dy * ny + dz * nz;
          dx -= 2 * dot * nx;
          dy -= 2 * dot * ny;
          dz -= 2 * dot * nz;
          ox = hx + dx * 0.001;
          oy = hy + dy * 0.001;
          oz = hz + dz * 0.001;
          weight *= sp2.refl;
        } else {
          alive = false;
        }
      }
    }
    var idx = (y * RW + x) * 4;
    pixels[idx] = cr > 255 ? 255 : cr | 0;
    pixels[idx + 1] = cg > 255 ? 255 : cg | 0;
    pixels[idx + 2] = cb > 255 ? 255 : cb | 0;
    pixels[idx + 3] = 255;
  }
}

function frame() {
  // animate the scene
  t += 0.1;
  spheres[0].x = Math.sin(t) * 1.5;
  spheres[1].z = 7.5 + Math.cos(t) * 1.2;
  for (var y = 0; y < RH; y++) {
    renderRow(y);
  }
  blit();
  requestAnimationFrame(frame);
}

function blit() {
  var img = { width: RW, height: RH, data: pixels };
  ctx.putImageData(img, 0, 0);
}
`
