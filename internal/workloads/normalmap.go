package workloads

import "repro/internal/browser"

// NormalMap reproduces the 29a.ch normal-mapping experiment: one flat
// per-pixel loop re-lights a surface from a normal map every frame (the
// paper's 99%-of-loop-time, 64-instance, 65k-trip nest — very easy to
// break, easy to parallelize, only "little" divergence from edge clamps).
// Shading calls an interpreted helper per pixel, keeping the sampler
// call-dense: Active tracks compute with no anomaly.
func NormalMap() *Workload {
	return &Workload{
		Name:        "Normal Mapping",
		Category:    "Games",
		Description: "normal mapping",
		Source:      normalmapSrc,
		Drive: func(w *browser.Window) error {
			if err := callGlobal(w, "setup"); err != nil {
				return err
			}
			frames := scale.n(16)
			for f := 0; f < frames; f++ {
				if _, err := w.PumpN(1); err != nil {
					return err
				}
			}
			return nil
		},
		PaperTotalS:            25,
		PaperActiveS:           6,
		PaperLoopsS:            4,
		ExpectComputeIntensive: true,
	}
}

const normalmapSrc = `
var MW = 64, MH = 64;
var normals = [];
var heights = [];
var out = [];
var lightT = 0;
var ctx = null;

function setup() {
  // synthesize a height field and its normals
  for (var y = 0; y < MH; y++) {
    for (var x = 0; x < MW; x++) {
      var h = Math.sin(x * 0.2) * Math.cos(y * 0.17) * 8;
      heights.push(h);
    }
  }
  for (var y = 0; y < MH; y++) {
    for (var x = 0; x < MW; x++) {
      var xl = x > 0 ? heights[y * MW + x - 1] : heights[y * MW + x];
      var xr = x < MW - 1 ? heights[y * MW + x + 1] : heights[y * MW + x];
      var yu = y > 0 ? heights[(y - 1) * MW + x] : heights[y * MW + x];
      var yd = y < MH - 1 ? heights[(y + 1) * MW + x] : heights[y * MW + x];
      var nx = xl - xr;
      var ny = yu - yd;
      var nz = 2;
      var il = 1 / Math.sqrt(nx * nx + ny * ny + nz * nz);
      normals.push([nx * il, ny * il, nz * il]);
    }
  }
  for (var i = 0; i < MW * MH * 4; i++) { out.push(0); }
  var cv = document.createElement("canvas");
  cv.setSize(MW, MH);
  document.body.appendChild(cv);
  ctx = cv.getContext("2d");
  requestAnimationFrame(frame);
}

// Per-pixel shading helper: an interpreted call per pixel. The clamp is
// branch-free (Math.max), leaving only local edge branches — the paper
// grades this nest's divergence "little".
function shade(n, lx, ly, lz) {
  return Math.max(0, n[0] * lx + n[1] * ly + n[2] * lz);
}

// The single hot nest: one flat loop over every pixel per frame.
function relight() {
  var lx = Math.cos(lightT), ly = Math.sin(lightT), lz = 0.8;
  var il = 1 / Math.sqrt(lx * lx + ly * ly + lz * lz);
  lx *= il; ly *= il; lz *= il;
  for (var i = 0; i < MW * MH; i++) {
    var d = shade(normals[i], lx, ly, lz);
    var spec = d * d;
    spec = spec * spec;
    var v = 30 + d * 170 + spec * 55;
    var idx = i * 4;
    out[idx] = v > 255 ? 255 : v | 0;
    out[idx + 1] = (v * 0.9) | 0;
    out[idx + 2] = (v * 0.7 + 20) | 0;
    out[idx + 3] = 255;
  }
}

function frame() {
  lightT += 0.15;
  relight();
  ctx.putImageData({ width: MW, height: MH, data: out }, 0, 0);
  requestAnimationFrame(frame);
}
`
