package workloads

import "repro/internal/browser"

// Processing reproduces the processing.js interactive spiral sketch: per
// frame, a long chain of *tiny* loops (vertex transform, color cycling,
// interpolation) — the paper's 54.6k-instance, 4±37-trip rows. The huge
// trip variance comes from an occasional long re-seed loop when the
// spiral wraps. One plotting nest touches the canvas (its Table 3 row is
// "very hard"); the arithmetic nests are easy/medium.
func Processing() *Workload {
	return &Workload{
		Name:        "processing.js",
		Category:    "Visualization",
		Description: "interactive spiral visual effect",
		Source:      processingSrc,
		Drive: func(w *browser.Window) error {
			if err := callGlobal(w, "setup"); err != nil {
				return err
			}
			frames := scale.n(160)
			for f := 0; f < frames; f++ {
				if _, err := w.PumpN(1); err != nil {
					return err
				}
			}
			return nil
		},
		PaperTotalS:            21,
		PaperActiveS:           12,
		PaperLoopsS:            2,
		ExpectComputeIntensive: true,
	}
}

const processingSrc = `
var SEGS = 40;
var ARMS = 4;
var segX = [], segY = [], segHue = [];
var phase = 0;
var wraps = 0;
var ctx = null;

function setup() {
  for (var i = 0; i < SEGS * ARMS; i++) {
    segX.push(0); segY.push(0); segHue.push(0);
  }
  reseed(SEGS * ARMS);
  var cv = document.createElement("canvas");
  cv.setSize(160, 160);
  document.body.appendChild(cv);
  ctx = cv.getContext("2d");
  requestAnimationFrame(frame);
}

// Occasional long loop: re-seed the whole spiral when the phase wraps.
// This is what gives the nest its 4±37 trip distribution.
function reseed(n) {
  for (var i = 0; i < n; i++) {
    segHue[i] = (i * 17) % 255;
  }
}

// Per-segment transform: called per segment per frame, so the tiny
// arm loop racks up tens of thousands of instances with ~4 trips — the
// paper's 54.6k-instance rows. The occasional reseed gives the trip
// distribution its long tail (4±37).
function transformSegment(s) {
  var r = 4 + s * 1.7;
  for (var a = 0; a < ARMS; a++) {
    var ang = phase + s * 0.31 + a * (2 * Math.PI / ARMS);
    segX[a * SEGS + s] = 80 + Math.cos(ang) * r;
    segY[a * SEGS + s] = 80 + Math.sin(ang) * r;
  }
}

// Tiny color-cycling loop per segment.
function cycleColors(s) {
  for (var a = 0; a < ARMS; a++) {
    segHue[a * SEGS + s] = (segHue[a * SEGS + s] + 3) % 255;
  }
}

// Tiny interpolation loop per segment (smoothing between arms).
function smooth(s) {
  for (var a = 1; a < ARMS; a++) {
    var i = a * SEGS + s;
    var j = (a - 1) * SEGS + s;
    segX[i] = segX[i] * 0.9 + segX[j] * 0.1;
    segY[i] = segY[i] * 0.9 + segY[j] * 0.1;
  }
}

// Canvas plotting loop per segment: the "very hard" row (canvas access
// every iteration).
function plot(s) {
  for (var a = 0; a < ARMS; a++) {
    var i = a * SEGS + s;
    ctx.setFillStyle(segHue[i], 120, 255 - segHue[i]);
    ctx.fillRect(segX[i], segY[i], 2, 2);
  }
}

// Processing.js sketches drive per-segment draw() calls from the runtime,
// so the tiny loops above are each their own top-level nest (the four
// ~25/22/16/13% rows of Table 3) rather than children of one big loop.
var cursor = 0;
function stepSegment() {
  transformSegment(cursor);
  cycleColors(cursor);
  smooth(cursor);
  plot(cursor);
  cursor++;
  if (cursor >= SEGS) {
    cursor = 0;
    return true;
  }
  return stepSegment();
}

function frame() {
  phase += 0.05;
  if (phase > 2 * Math.PI) {
    phase -= 2 * Math.PI;
    wraps++;
    reseed(SEGS * ARMS); // the long-tail instance
  }
  stepSegment();
  requestAnimationFrame(frame);
}
`
