package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/js/ast"
)

func TestMain(m *testing.M) {
	SetScale(QuickScale)
	m.Run()
}

// TestAllWorkloadsRun executes every Table 1 app end to end without
// instrumentation and checks it actually computed something.
func TestAllWorkloadsRun(t *testing.T) {
	for _, wl := range All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			in := NewInterp(7)
			w, err := Run(wl, in)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			// Interactive apps (Ace, MyScript) are idle-dominated by
			// design; even they should exceed ~1k steps at quarter scale.
			if in.Steps() < 1_000 {
				t.Errorf("suspiciously few steps: %d", in.Steps())
			}
			if w.Dispatched == 0 {
				t.Errorf("no callbacks/events dispatched")
			}
		})
	}
}

// TestWorkloadsDeterministic: same seed, same step count.
func TestWorkloadsDeterministic(t *testing.T) {
	for _, name := range []string{"fluidSim", "Realtime Raytracing", "Ace"} {
		wl, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		in1 := NewInterp(11)
		if _, err := Run(wl, in1); err != nil {
			t.Fatal(err)
		}
		wl2, _ := ByName(name)
		in2 := NewInterp(11)
		if _, err := Run(wl2, in2); err != nil {
			t.Fatal(err)
		}
		if in1.Steps() != in2.Steps() {
			t.Errorf("%s: steps %d vs %d", name, in1.Steps(), in2.Steps())
		}
	}
}

// TestWorkloadsUnderFullInstrumentation runs each app with the dependence
// analyzer installed — the heaviest mode — and checks nothing breaks.
func TestWorkloadsUnderFullInstrumentation(t *testing.T) {
	if testing.Short() {
		t.Skip("dependence mode is slow")
	}
	for _, wl := range All() {
		wl := wl
		t.Run(wl.Name, func(t *testing.T) {
			in := NewInterp(7)
			dep := core.NewDepAnalyzer(ast.NoLoop)
			in.SetHooks(dep)
			if _, err := Run(wl, in); err != nil {
				t.Fatalf("run: %v", err)
			}
			if dep.Stack().Depth() != 0 {
				t.Errorf("loop stack not empty at end: %d", dep.Stack().Depth())
			}
		})
	}
}

// TestTable1Registry checks the registry matches Table 1.
func TestTable1Registry(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("Table 1 has 12 apps, registry has %d", len(all))
	}
	categories := map[string]bool{}
	for _, wl := range all {
		if wl.Name == "" || wl.Category == "" || wl.Description == "" || wl.Source == "" {
			t.Errorf("%q: incomplete registry entry", wl.Name)
		}
		categories[wl.Category] = true
		if _, err := Parse(wl); err != nil {
			t.Errorf("%s does not parse: %v", wl.Name, err)
		}
	}
	for _, want := range []string{"Games", "User recognition", "Visualization", "Audio and Video", "Productivity"} {
		if !categories[want] {
			t.Errorf("missing Table 1 category %q", want)
		}
	}
	if _, err := ByName("no-such-app"); err == nil {
		t.Error("ByName should fail for unknown workloads")
	}
}

// TestCanvasWorkloadsProducePixels checks the image apps actually paint.
func TestCanvasWorkloadsProducePixels(t *testing.T) {
	for _, name := range []string{"CamanJS", "Realtime Raytracing", "Normal Mapping", "fluidSim"} {
		wl, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		in := NewInterp(3)
		w, err := Run(wl, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(w.Canvases) == 0 {
			t.Fatalf("%s: no canvas created", name)
		}
		painted := false
		for _, cv := range w.Canvases {
			for _, b := range cv.Pix {
				if b != 0 {
					painted = true
					break
				}
			}
		}
		if !painted {
			t.Errorf("%s: canvas untouched", name)
		}
	}
}

// TestHistogramControl runs the reduce-shaped control workload (not in
// Table 1) and checks every primitive-shaped kernel actually computed.
func TestHistogramControl(t *testing.T) {
	wl := Histogram()
	in := NewInterp(7)
	w, err := Run(wl, in)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(w.Canvases) == 0 {
		t.Fatal("no canvas created")
	}
	if e := in.Global("totalEnergy").ToNumber(); e <= 0 {
		t.Errorf("energy reduction = %v, want > 0", e)
	}
	if b := in.Global("brightCount").ToNumber(); b <= 0 {
		t.Errorf("bright-pixel filter kept %v, want > 0", b)
	}
	cdf := in.Global("cdf")
	if !cdf.IsObject() || len(cdf.Object().Elems) != 256 {
		t.Fatal("CDF scan did not produce 256 bins")
	}
	if got := cdf.Object().Elems[255].ToNumber(); got != 96*64 {
		t.Errorf("cdf[255] = %v, want %v (all pixels)", got, 96*64)
	}
}

// TestDOMWorkloadsTouchDOM checks the interactive apps mutate the DOM.
func TestDOMWorkloadsTouchDOM(t *testing.T) {
	for _, name := range []string{"Ace", "MyScript", "sigma.js", "D3.js"} {
		wl, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		in := NewInterp(3)
		w, err := Run(wl, in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if w.Doc.TotalOps < 10 {
			t.Errorf("%s: only %d DOM ops", name, w.Doc.TotalOps)
		}
	}
}
