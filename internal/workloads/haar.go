package workloads

import "repro/internal/browser"

// HAAR reproduces HAAR.js: Viola–Jones face detection. The computation is
// dominated by a recursive cascade evaluation (call-dense, little loop
// time — Table 2 shows Active 2s but only 0.44s in loops), with two loop
// nests: the integral-image construction and the per-window Haar-feature
// rectangle sums (the paper's 50k-instance, 15±15-trip nest whose
// tree-search recursion makes iterations uneven).
func HAAR() *Workload {
	return &Workload{
		Name:        "HAAR.js",
		Category:    "User recognition",
		Description: "face recognition (Viola-Jones)",
		Source:      haarSrc,
		Drive: func(w *browser.Window) error {
			in := w.In
			// Page load: resources arrive, user picks an image.
			w.IdleFor(1200 * msVirtual)
			if err := callGlobal(w, "setup"); err != nil {
				return err
			}
			w.IdleFor(600 * msVirtual)
			runs := scale.n(2)
			for i := 0; i < runs; i++ {
				if err := w.DispatchEvent("detect", event(in, map[string]float64{"run": float64(i)})); err != nil {
					return err
				}
				w.IdleFor(700 * msVirtual)
			}
			return nil
		},
		PaperTotalS:            8,
		PaperActiveS:           2,
		PaperLoopsS:            0.44,
		ExpectComputeIntensive: true,
	}
}

const haarSrc = `
var W = 48, H = 48;
var img = [];
var integral = [];
var trees = [];
var found = 0;

function setup() {
  initImage();
  buildCascade();
}

function initImage() {
  var i;
  for (i = 0; i < W * H; i++) {
    img.push(((i * 7919 + 131) % 256));
  }
}

// Integral image: the first loop nest of Table 3 (row-major prefix sums).
function computeIntegral() {
  integral = new Array((W + 1) * (H + 1));
  for (var y = 0; y <= H; y++) { integral[y * (W + 1)] = 0; }
  for (var x = 0; x <= W; x++) { integral[x] = 0; }
  for (var y = 1; y <= H; y++) {
    var rowSum = 0;
    for (var x = 1; x <= W; x++) {
      rowSum += img[(y - 1) * W + (x - 1)];
      integral[y * (W + 1) + x] = integral[(y - 1) * (W + 1) + x] + rowSum;
    }
  }
}

function rectSum(x0, y0, x1, y1) {
  var s = W + 1;
  return integral[y1 * s + x1] - integral[y0 * s + x1] - integral[y1 * s + x0] + integral[y0 * s + x0];
}

// A small random forest of depth-limited decision trees over Haar-like
// rectangle features; evaluation recurses data-dependently (the paper's
// "recursive search through a tree which makes the iterations uneven").
function makeNode(depth, seed) {
  var node = {};
  if (depth === 0) {
    node.leaf = true;
    node.val = (seed % 7) - 3;
    node.val2 = seed % 29;
    node.rich = seed % 4 === 0;
    return node;
  }
  node.leaf = false;
  node.rx = seed % 8;
  node.ry = (seed * 3) % 8;
  node.rw = 2 + seed % 6;
  node.rh = 2 + (seed * 5) % 6;
  node.thr = 120 * node.rw * node.rh;
  // data-dependent early termination: some branches are shallow
  var leftDepth = depth - 1;
  if (seed % 3 === 0) { leftDepth = 0; }
  node.left = makeNode(leftDepth, seed * 2 + 1);
  node.right = makeNode(depth - 1, seed * 2 + 2);
  return node;
}

function buildCascade() {
  for (var t = 0; t < 24; t++) {
    trees.push(makeNode(5, t + 7));
  }
}

// Interior nodes compute a three-rectangle Haar feature inline (no loop:
// the cascade is a call tree, which is why HAAR's Active time dwarfs its
// loop time in Table 2). Rich leaves refine their response with a short
// sub-rectangle loop — the paper's many-instance, ~15-trip nest whose
// enclosing tree recursion makes iterations uneven.
function evalNode(node, wx, wy) {
  if (node.leaf) {
    if (node.rich) {
      return refineLeaf(node, wx, wy);
    }
    return node.val;
  }
  var x0 = wx + node.rx;
  var y0 = wy + node.ry;
  var a = rectSum(x0, y0, x0 + node.rw, y0 + node.rh);
  var b = rectSum(x0, y0 + node.rh, x0 + node.rw, y0 + 2 * node.rh);
  var c = rectSum(x0 + node.rw, y0, x0 + 2 * node.rw, y0 + node.rh);
  var f = 2 * a - b - c;
  if (f < node.thr) {
    return evalNode(node.left, wx, wy);
  }
  return evalNode(node.right, wx, wy);
}

// Leaf refinement: the second Table 3 nest (sub-rectangle sums, ~15
// trips, data-dependent saturation branch).
function refineLeaf(node, wx, wy) {
  var acc = 0;
  var n = 8 + (node.val2 % 14);
  for (var r = 0; r < n; r++) {
    var x0 = wx + ((node.val2 + r) % 10);
    var y0 = wy + ((node.val2 + r * 2) % 10);
    acc += rectSum(x0, y0, x0 + 3, y0 + 3);
    if (acc > 90000) {
      acc = acc - 60000;
    }
  }
  return node.val + (acc % 5) - 2;
}

// Recursive window sweep over positions (call tree, not a loop).
function scanRegion(x0, y0, x1, y1) {
  if (x1 - x0 < 8 || y1 - y0 < 8) {
    var score = 0;
    score = evalTrees(0, score, x0, y0);
    if (score > 2) {
      found++;
    }
    return;
  }
  var mx = (x0 + x1) >> 1;
  var my = (y0 + y1) >> 1;
  scanRegion(x0, y0, mx, my);
  scanRegion(mx, y0, x1, my);
  scanRegion(x0, my, mx, my + (y1 - my));
  scanRegion(mx, my, x1, y1);
}

// The forest is evaluated by recursive chaining — HAAR.js's cascade
// stages short-circuit, so iteration-style loops do not fit here.
function evalTrees(t, score, wx, wy) {
  if (t >= trees.length) {
    return score;
  }
  score += evalNode(trees[t], wx, wy);
  if (score < -40) {
    return score; // cascade early reject
  }
  return evalTrees(t + 1, score, wx, wy);
}

addEventListener("detect", function (e) {
  computeIntegral();
  found = 0;
  scanRegion(0, 0, W - 16, H - 16);
  console.log("faces:", found);
});
`
