package workloads

import "repro/internal/browser"

// Sigma reproduces sigma.js rendering a GEXF graph: force-directed layout
// updating node positions in place (later iterations read positions
// earlier iterations just wrote — flow dependences that make the nest
// "very hard"), with DOM updates inside the loops. Table 3 lists two
// nests: the layout sweep (68%, 191±27 trips) and the edge pass (22%).
func Sigma() *Workload {
	return &Workload{
		Name:        "sigma.js",
		Category:    "Visualization",
		Description: "GEXF rendering",
		Source:      sigmaSrc,
		Drive: func(w *browser.Window) error {
			if err := callGlobal(w, "setup"); err != nil {
				return err
			}
			w.IdleFor(1500 * msVirtual)
			steps := scale.n(12)
			for i := 0; i < steps; i++ {
				if err := w.DispatchEvent("layoutStep", event(w.In, nil)); err != nil {
					return err
				}
				w.IdleFor(400 * msVirtual)
			}
			return nil
		},
		PaperTotalS:            32,
		PaperActiveS:           9,
		PaperLoopsS:            8,
		ExpectComputeIntensive: true,
	}
}

const sigmaSrc = `
var NODES = 80;
var nodesX = [], nodesY = [], nodeEls = [];
var edgeA = [], edgeB = [];
var container = null;
var temperature = 8;

function setup() {
  container = document.createElement("div");
  container.setAttribute("id", "graph");
  document.body.appendChild(container);
  for (var i = 0; i < NODES; i++) {
    nodesX.push(Math.cos(i * 2.39) * 60 + 100);
    nodesY.push(Math.sin(i * 2.39) * 60 + 80);
    var el = document.createElement("div");
    container.appendChild(el);
    nodeEls.push(el);
  }
  // GEXF-ish edge list: ring plus chords
  for (var i = 0; i < NODES; i++) {
    edgeA.push(i);
    edgeB.push((i + 1) % NODES);
    edgeA.push(i);
    edgeB.push((i * 7 + 13) % NODES);
    edgeA.push(i);
    edgeB.push((i * 11 + 29) % NODES);
    if (i % 2 === 0) {
      edgeA.push(i);
      edgeB.push((i * 13 + 41) % NODES);
    }
  }
}

// Nest 1 (68% row): repulsion sweep. Positions are updated in place, so
// iteration k reads coordinates iterations < k already moved — true flow
// dependences — and the node's DOM element is updated per iteration.
function repulsionSweep() {
  for (var i = 0; i < NODES; i++) {
    var fx = 0, fy = 0;
    for (var j = 0; j < NODES; j++) {
      if (i === j) { continue; }
      var dx = nodesX[i] - nodesX[j];
      var dy = nodesY[i] - nodesY[j];
      var d2 = dx * dx + dy * dy + 0.1;
      fx += dx / d2 * 30;
      fy += dy / d2 * 30;
    }
    nodesX[i] += clampForce(fx);
    nodesY[i] += clampForce(fy);
    nodeEls[i].setStyle("left", (nodesX[i] | 0) + "px");
    nodeEls[i].setStyle("top", (nodesY[i] | 0) + "px");
  }
}

// Nest 2 (22% row): edge attraction — writes both endpoints, so the same
// coordinates are rewritten across iterations (overlapping writes), with
// a data-dependent skip for short edges (divergence yes).
function attractionPass() {
  for (var e = 0; e < edgeA.length; e++) {
    var a = edgeA[e], b = edgeB[e];
    var dx = nodesX[b] - nodesX[a];
    var dy = nodesY[b] - nodesY[a];
    var d = Math.sqrt(dx * dx + dy * dy);
    if (d < 12) { continue; }
    var f = (d - 12) * 0.02;
    // edge bundling control point (typical sigma.js curved-edge math)
    var mx = (nodesX[a] + nodesX[b]) / 2 + dy / d * 6;
    var my = (nodesY[a] + nodesY[b]) / 2 - dx / d * 6;
    var bend = Math.atan2(my - nodesY[a], mx - nodesX[a]);
    var w1 = Math.cos(bend) * 0.3 + Math.sin(bend) * 0.1;
    var w2 = Math.sin(bend) * 0.3 - Math.cos(bend) * 0.1;
    nodesX[a] += dx / d * f + w1 * 0.01;
    nodesY[a] += dy / d * f + w2 * 0.01;
    nodesX[b] -= dx / d * f + w1 * 0.01;
    nodesY[b] -= dy / d * f + w2 * 0.01;
    nodeEls[a].setStyle("left", (nodesX[a] | 0) + "px");
    nodeEls[b].setStyle("left", (nodesX[b] | 0) + "px");
  }
}

function clampForce(f) {
  if (f > temperature) { return temperature; }
  if (f < -temperature) { return -temperature; }
  return f;
}

addEventListener("layoutStep", function (e) {
  repulsionSweep();
  attractionPass();
  if (temperature > 1) {
    temperature *= 0.95;
  }
});
`
