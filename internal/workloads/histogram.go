package workloads

import "repro/internal/browser"

// Histogram is not one of the Table 1 apps: it is a reduce-shaped control
// added to exercise the full River Trail primitive set of §5.1. Its
// kernels are the canonical shapes the primitives cover — a per-pixel
// luminance map, a binned histogram reduction, a scalar energy
// reduction, a CDF prefix scan, and a bright-pixel filter — with the
// scalar/array loop-carried dependences that make the nests "breakable
// with modest effort" rather than trivially independent (§4.1's
// reduction discussion).
func Histogram() *Workload {
	return &Workload{
		Name:        "Histogram",
		Category:    "Baseline",
		Description: "image histogram + CDF (reduce/scan/filter-shaped control)",
		Source:      histogramSrc,
		Drive: func(w *browser.Window) error {
			if err := callGlobal(w, "setup"); err != nil {
				return err
			}
			w.IdleFor(400 * msVirtual)
			passes := scale.n(8)
			for i := 0; i < passes; i++ {
				if err := w.DispatchEvent("analyze", event(w.In, map[string]float64{"pass": float64(i)})); err != nil {
					return err
				}
				w.IdleFor(200 * msVirtual)
			}
			return nil
		},
		PaperTotalS: 0, PaperActiveS: 0, PaperLoopsS: 0,
	}
}

const histogramSrc = `
var HW = 96, HH = 64;
var ctx = null;
var imageData = null;
var histogram = [];
var cdf = [];
var totalEnergy = 0;
var brightCount = 0;

function setup() {
  var cv = document.createElement("canvas");
  cv.setSize(HW, HH);
  document.body.appendChild(cv);
  ctx = cv.getContext("2d");
  // procedural test card: nested gradient blocks
  ctx.setFillStyle(24, 48, 96);
  ctx.fillRect(0, 0, HW, HH);
  ctx.setFillStyle(180, 140, 60);
  ctx.fillRect(6, 6, HW - 12, HH - 12);
  ctx.setFillStyle(230, 230, 210);
  ctx.fillRect(HW / 4, HH / 4, HW / 2, HH / 2);
  imageData = ctx.getImageData(0, 0, HW, HH);
}

function luminance(r, g, b) {
  return (r * 2126 + g * 7152 + b * 722) / 10000 | 0;
}

// Binned reduction: the histogram bins carry an indexed loop dependence
// (hist[bin]++) — parallelizable with per-worker private bins + merge.
function buildHistogram() {
  var data = imageData.data;
  histogram = [];
  for (var b = 0; b < 256; b++) { histogram.push(0); }
  for (var i = 0; i < data.length; i += 4) {
    var lum = luminance(data[i], data[i + 1], data[i + 2]);
    histogram[lum] = histogram[lum] + 1;
  }
}

// Scalar reduction: the classic sum loop (breaking deps: easy).
function sumEnergy() {
  var data = imageData.data;
  var total = 0;
  for (var i = 0; i < data.length; i += 4) {
    total += luminance(data[i], data[i + 1], data[i + 2]);
  }
  totalEnergy = total;
}

// Prefix scan: cdf[b] depends on cdf[b-1] — the scan primitive's shape.
function buildCDF() {
  cdf = [];
  var run = 0;
  for (var b = 0; b < 256; b++) {
    run += histogram[b];
    cdf.push(run);
  }
}

// Filter: count (and equalize) bright pixels against the CDF.
function equalizeBright() {
  var data = imageData.data;
  var n = HW * HH;
  brightCount = 0;
  for (var i = 0; i < data.length; i += 4) {
    var lum = luminance(data[i], data[i + 1], data[i + 2]);
    if (lum >= 128) {
      brightCount++;
      var scaled = (cdf[lum] * 255 / n) | 0;
      data[i] = scaled;
      data[i + 1] = scaled;
      data[i + 2] = scaled;
    }
  }
}

addEventListener("analyze", function (e) {
  buildHistogram();
  sumEnergy();
  buildCDF();
  equalizeBright();
  ctx.putImageData(imageData, 0, 0);
});
`

// HistogramKernelSrc is the self-contained parallel.Kernel source
// matching the workload's analysis pass: kernel(i) is the luminance of
// procedural pixel i, combine sums (reduce → total energy, scan → CDF
// running total) and pred keeps bright pixels (filter). Used by the
// primitive cross-check benchmarks; no Setup required.
const HistogramKernelSrc = `
function kernel(i) {
  var x = i % 96;
  var y = (i - x) / 96;
  var r = (x * 211 + y * 17 + 24) % 256;
  var g = (x * 31 + y * 97 + 48) % 256;
  var b = (x * 7 + y * 139 + 96) % 256;
  return (r * 2126 + g * 7152 + b * 722) / 10000 | 0;
}
function combine(a, b) { return a + b; }
function pred(x, i) { return x >= 128; }
`
