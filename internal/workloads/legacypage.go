package workloads

import "repro/internal/browser"

// LegacyPage is not one of the Table 1 apps: it models the page-centric
// legacy web that Fortuna et al. studied — several independent widgets
// (menu, carousel, analytics, form validation) each handling its own
// events on its own state. The task-graph baseline finds substantial
// task-level parallel slack here, unlike the compute-centric Table 1
// apps whose frames chain — which is exactly the §6 contrast: the old
// web parallelizes across tasks, the emerging web inside loops.
func LegacyPage() *Workload {
	return &Workload{
		Name:        "LegacyPage",
		Category:    "Baseline",
		Description: "page-centric site with independent widgets (Fortuna-style)",
		Source:      legacyPageSrc,
		Drive: func(w *browser.Window) error {
			if err := callGlobal(w, "setup"); err != nil {
				return err
			}
			events := scale.n(40)
			for i := 0; i < events; i++ {
				var name string
				switch i % 4 {
				case 0:
					name = "menuHover"
				case 1:
					name = "carouselTick"
				case 2:
					name = "analyticsPing"
				default:
					name = "formKey"
				}
				if err := w.DispatchEvent(name, event(w.In, map[string]float64{"n": float64(i)})); err != nil {
					return err
				}
				w.IdleFor(250 * msVirtual)
			}
			return nil
		},
		PaperTotalS: 0, PaperActiveS: 0, PaperLoopsS: 0,
	}
}

const legacyPageSrc = `
// four widgets, each with private state: their event tasks are mutually
// independent, so a task-level limit study finds real slack here
var menuState = { open: 0, hovers: 0 };
var carouselState = { index: 0, offsets: [] };
var analyticsState = { events: [] };
var formState = { value: "", valid: false };

function setup() {
  for (var i = 0; i < 12; i++) { carouselState.offsets.push(i * 40); }
}

addEventListener("menuHover", function (e) {
  menuState.hovers++;
  var acc = 0;
  for (var i = 0; i < 400; i++) { acc += (i * 13) % 7; }
  menuState.open = acc % 2;
});

addEventListener("carouselTick", function (e) {
  var total = 0;
  for (var i = 0; i < 400; i++) { total += (carouselState.index + i) % 11; }
  carouselState.index = (carouselState.index + 1) % carouselState.offsets.length;
});

addEventListener("analyticsPing", function (e) {
  var digest = 0;
  for (var i = 0; i < 400; i++) { digest = (digest * 31 + i) % 65521; }
  analyticsState.events.push(digest);
});

addEventListener("formKey", function (e) {
  formState.value = formState.value + "x";
  var ok = 0;
  for (var i = 0; i < 400; i++) { ok += formState.value.length % 3; }
  formState.valid = ok > 0;
});
`
