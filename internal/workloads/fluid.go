package workloads

import "repro/internal/browser"

// Fluid reproduces fluidSim: a Jos-Stam-style Navier–Stokes solver on a
// grid, animated per frame. The dominant nest is the linear-solver sweep
// (the paper's 90%-of-loop-time, 40k-instance, 168-trip row with no
// divergence). The Jacobi sweep writes one buffer while reading another,
// so the row loops are cleanly parallel (easy/easy); only the outer
// relaxation iterations chain sequentially.
func Fluid() *Workload {
	return &Workload{
		Name:        "fluidSim",
		Category:    "Games",
		Description: "fluid dynamics simulation (Navier-Stokes)",
		Source:      fluidSrc,
		Drive: func(w *browser.Window) error {
			if err := callGlobal(w, "setup"); err != nil {
				return err
			}
			frames := scale.n(28)
			for f := 0; f < frames; f++ {
				if f%6 == 0 {
					if err := w.DispatchEvent("stir", event(w.In, map[string]float64{
						"x": float64(4 + f%20), "y": float64(6 + f%14)})); err != nil {
						return err
					}
				}
				if _, err := w.PumpN(1); err != nil {
					return err
				}
			}
			return nil
		},
		PaperTotalS:            22,
		PaperActiveS:           17,
		PaperLoopsS:            12,
		ExpectComputeIntensive: true,
	}
}

const fluidSrc = `
var N = 26;
var SZ = (N + 2) * (N + 2);
var u = [], v = [], uPrev = [], vPrev = [], dens = [], densPrev = [], pScratch = [];
var ctx = null;

function IX(i, j) { return i + (N + 2) * j; }

function setup() {
  for (var i = 0; i < SZ; i++) {
    u.push(0); v.push(0); uPrev.push(0); vPrev.push(0); dens.push(0); densPrev.push(0); pScratch.push(0);
  }
  var cv = document.createElement("canvas");
  cv.setSize(N + 2, N + 2);
  document.body.appendChild(cv);
  ctx = cv.getContext("2d");
  requestAnimationFrame(frame);
}

// Jacobi relaxation: the outer k loop is sequential, but each sweep reads
// one buffer and writes the other - the inner row loops are the paper's
// parallelizable nest.
function linSolve(to, from, src, a, c) {
  for (var k = 0; k < 8; k++) {
    for (var j = 1; j <= N; j++) {
      for (var i = 1; i <= N; i++) {
        to[IX(i, j)] = (src[IX(i, j)] + a * (from[IX(i - 1, j)] + from[IX(i + 1, j)] + from[IX(i, j - 1)] + from[IX(i, j + 1)])) / c;
      }
    }
    var tmp = from;
    from = to;
    to = tmp;
  }
  return from;
}

function addSource(x, s, dt) {
  for (var i = 0; i < SZ; i++) {
    x[i] += dt * s[i];
  }
}

function diffuse(x, x0, diff, dt) {
  var a = dt * diff * N * N;
  return linSolve(x, x0, x0, a, 1 + 4 * a);
}

function advect(d, d0, uu, vv, dt) {
  var dt0 = dt * N;
  for (var j = 1; j <= N; j++) {
    for (var i = 1; i <= N; i++) {
      var x = i - dt0 * uu[IX(i, j)];
      var y = j - dt0 * vv[IX(i, j)];
      if (x < 0.5) { x = 0.5; }
      if (x > N + 0.5) { x = N + 0.5; }
      if (y < 0.5) { y = 0.5; }
      if (y > N + 0.5) { y = N + 0.5; }
      var i0 = x | 0, i1 = i0 + 1;
      var j0 = y | 0, j1 = j0 + 1;
      var s1 = x - i0, s0 = 1 - s1;
      var t1 = y - j0, t0 = 1 - t1;
      d[IX(i, j)] = s0 * (t0 * d0[IX(i0, j0)] + t1 * d0[IX(i0, j1)]) + s1 * (t0 * d0[IX(i1, j0)] + t1 * d0[IX(i1, j1)]);
    }
  }
}

function project(uu, vv, p, div) {
  for (var j = 1; j <= N; j++) {
    for (var i = 1; i <= N; i++) {
      div[IX(i, j)] = -0.5 * (uu[IX(i + 1, j)] - uu[IX(i - 1, j)] + vv[IX(i, j + 1)] - vv[IX(i, j - 1)]) / N;
      p[IX(i, j)] = 0;
    }
  }
  p = linSolve(pScratch, p, div, 1, 4);
  for (var j = 1; j <= N; j++) {
    for (var i = 1; i <= N; i++) {
      uu[IX(i, j)] -= 0.5 * N * (p[IX(i + 1, j)] - p[IX(i - 1, j)]);
      vv[IX(i, j)] -= 0.5 * N * (p[IX(i, j + 1)] - p[IX(i, j - 1)]);
    }
  }
}

function velStep(dt) {
  addSource(u, uPrev, dt);
  addSource(v, vPrev, dt);
  advect(uPrev, u, u, v, dt);
  advect(vPrev, v, u, v, dt);
  var tmp;
  tmp = u; u = uPrev; uPrev = tmp;
  tmp = v; v = vPrev; vPrev = tmp;
  project(u, v, uPrev, vPrev);
}

function densStep(dt) {
  addSource(dens, densPrev, dt);
  advect(densPrev, dens, u, v, dt);
  var tmp = dens; dens = densPrev; densPrev = tmp;
  diffuse(dens, densPrev, 0.0002, dt);
}

function decaySources() {
  for (var i = 0; i < SZ; i++) {
    uPrev[i] *= 0.6;
    vPrev[i] *= 0.6;
    densPrev[i] *= 0.6;
  }
}

function render() {
  for (var j = 1; j <= N; j += 4) {
    for (var i = 1; i <= N; i += 4) {
      var d = dens[IX(i, j)];
      if (d > 255) { d = 255; }
      ctx.setFillStyle(d, d, d);
      ctx.fillRect(i, j, 4, 4);
    }
  }
}

function frame() {
  velStep(0.1);
  densStep(0.1);
  decaySources();
  render();
  requestAnimationFrame(frame);
}

addEventListener("stir", function (e) {
  var i = e.x | 0, j = e.y | 0;
  if (i < 1) { i = 1; }
  if (j < 1) { j = 1; }
  if (i > N) { i = N; }
  if (j > N) { j = N; }
  uPrev[IX(i, j)] += 40;
  vPrev[IX(i, j)] += 28;
  densPrev[IX(i, j)] += 300;
});
`
