// Package repro reproduces "Are web applications ready for parallelism?"
// (Radoi, Herhut, Sreeram, Dig — PPoPP 2015) as a Go library.
//
// The paper's tool, JS-CERES, profiles JavaScript web applications and
// runs a dynamic dependence analysis over their loops to find latent data
// parallelism. This repository rebuilds the entire stack from scratch:
//
//   - internal/js/...    a JavaScript-subset engine (lexer, parser,
//     printer, tree-walking interpreter) with first-class instrumentation
//     hooks;
//   - internal/browser   simulated DOM, canvas and event-loop substrates;
//   - internal/core      JS-CERES itself: the three staged analysis modes
//     of §3 and the Table 3 classifier;
//   - internal/gecko     the sampling profiler whose "Active" column
//     undercounts single-function loops (§3.1);
//   - internal/workloads the 12 case-study applications of Table 1;
//   - internal/study     the Table 2/3 pipelines, Amdahl bounds, and the
//     concurrent (workload × mode) study orchestrator;
//   - internal/survey    the §2 developer survey (Figures 1–4);
//   - internal/parallel  goroutine execution of analysis-approved loops:
//     the full River Trail primitive set (map, reduce, filter, scan);
//   - internal/taskgraph the Fortuna et al. task-level baseline (§6);
//   - internal/instrument + internal/proxy  the Fig. 5 source-rewriting
//     HTTP proxy.
//
// See DESIGN.md for the system inventory and per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured comparisons. The benchmarks in
// bench_test.go regenerate every table and figure.
package repro
